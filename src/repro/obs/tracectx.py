"""Cross-process trace context: one causal tree per campaign.

Span ids are pid-prefixed (``"<pid>-<n>"``), so merging the JSONL sinks
of a scheduler and its workers never collides — but before this module
the merged spans formed a *forest*: each worker's ``campaign.job`` was
a root, causally unmoored from the campaign that scheduled it.  A trace
context repairs that with two process-level fields on the obs state:

``trace_id``
    An opaque id shared by every process working on one campaign.
    Span events carry it as ``"trace"``; ``obs report --trace`` groups
    by it.
``remote_parent``
    The span id (in *another* process) that local root spans should
    attach to — the scheduler's campaign span.  Only spans opened with
    an empty thread-local stack adopt it; nested spans keep their real
    local parent.

The context crosses process boundaries two ways, matching the two ways
this codebase starts workers:

* ``REPRO_OBS_TRACE="<trace_id>:<parent_span_id>"`` — inherited by
  ProcessPool campaign workers at import, alongside ``REPRO_OBS``
  (:func:`repro.obs.core._activate_from_env`).
* A ``trace`` field (:func:`wire_context` payload) on the cluster
  ``job``/``result`` lease messages — adopted per-job by long-lived
  cluster workers via :func:`adopted`, because a parked worker serves
  many campaigns and each job may belong to a different trace.

Non-perturbation: trace ids come from :func:`uuid.uuid4` (OS entropy,
``os.urandom``) — never ``random`` or numpy — so enabling tracing
leaves every seeded experiment's RNG streams, and therefore every
pinned metrics digest, byte-identical (asserted in
``tests/test_obs_integration.py``).
"""

from __future__ import annotations

import os
import uuid
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.core import ENV_TRACE, STATE

__all__ = [
    "ENV_TRACE",
    "new_trace_id",
    "begin_trace",
    "set_trace",
    "clear_trace",
    "current_trace_id",
    "current_parent",
    "wire_context",
    "env_value",
    "export_to_env",
    "adopted",
]


def new_trace_id() -> str:
    """A fresh opaque trace id.

    Drawn from ``uuid4`` (OS entropy), deliberately *not* from the
    ``random`` module: generating a trace id must never advance the
    seeded RNG streams the experiments measure.
    """
    return uuid.uuid4().hex[:16]


def set_trace(trace_id: Optional[str], parent: Optional[str] = None) -> None:
    """Install a trace context on this process.

    ``parent`` is the remote span id that local *root* spans should
    attach to (None for the process that owns the root span itself).
    """
    STATE.trace_id = trace_id
    STATE.remote_parent = parent


def clear_trace() -> None:
    """Drop the process trace context."""
    set_trace(None, None)


def begin_trace() -> str:
    """The current trace id, creating and installing one if absent.

    Campaign entry points (runner, scheduler) call this so that a
    campaign started *inside* an existing trace joins it instead of
    forking a new one.
    """
    if STATE.trace_id is None:
        STATE.trace_id = new_trace_id()
    return STATE.trace_id


def current_trace_id() -> Optional[str]:
    """The process's trace id, or None when no trace is active."""
    return STATE.trace_id


def current_parent() -> Optional[str]:
    """The span id new child work should parent to: the innermost open
    span on this thread, else the inherited remote parent."""
    stack = getattr(STATE._local, "stack", None)
    if stack:
        return stack[-1].span_id
    return STATE.remote_parent


def wire_context(
    trace_id: Optional[str] = None, parent: Optional[str] = None
) -> Optional[dict]:
    """The JSON-safe trace payload carried on cluster lease messages:
    ``{"trace": <trace_id>, "parent": <span_id>}``, or None when there
    is nothing to propagate (keeps untraced messages byte-identical to
    the pre-trace protocol)."""
    trace_id = trace_id if trace_id is not None else STATE.trace_id
    if trace_id is None:
        return None
    context = {"trace": trace_id}
    parent = parent if parent is not None else current_parent()
    if parent is not None:
        context["parent"] = parent
    return context


def env_value(
    trace_id: Optional[str] = None, parent: Optional[str] = None
) -> Optional[str]:
    """The ``REPRO_OBS_TRACE`` encoding (``"<trace_id>:<parent>"``)
    for child processes, or None when no trace is active."""
    context = wire_context(trace_id, parent)
    if context is None:
        return None
    return f"{context['trace']}:{context.get('parent', '')}"


def export_to_env(
    trace_id: Optional[str] = None,
    parent: Optional[str] = None,
    environ: Optional[dict] = None,
) -> bool:
    """Write the trace context into ``environ`` (default
    ``os.environ``) so spawned worker processes inherit it at import.
    Returns True when a context was exported."""
    value = env_value(trace_id, parent)
    if value is None:
        return False
    target = os.environ if environ is None else environ
    target[ENV_TRACE] = value
    return True


@contextmanager
def adopted(context: Optional[dict]) -> Iterator[None]:
    """Temporarily adopt a :func:`wire_context` payload.

    Cluster workers wrap each job in this so the job's spans join the
    scheduling campaign's tree; the scheduler wraps its own finalize
    work (shard merge) so those spans attach to the campaign span it
    manages manually.  A falsy ``context`` is a no-op, and the previous
    context is always restored — a parked worker returns to its idle
    (traceless) state between jobs.
    """
    if not context:
        yield
        return
    saved = (STATE.trace_id, STATE.remote_parent)
    STATE.trace_id = context.get("trace")
    STATE.remote_parent = context.get("parent")
    try:
        yield
    finally:
        STATE.trace_id, STATE.remote_parent = saved
