"""Render observability JSONL sinks back into human-readable form.

Four views, matching the ``python -m repro obs`` subcommands:

* :func:`render_report` — merged counter/histogram tables plus
  per-span-name timing aggregates and the reconstructed span tree;
* :func:`render_trace` — the cross-process trace view
  (``obs report --trace``): the stitched span tree over all merged
  sinks and a critical-path breakdown of campaign wall-clock into
  queue-wait / compute / retry-backoff / merge;
* :func:`render_tail` — the last N events, one formatted line each;
* :func:`merge_events` — the machine-readable merge (``obs export``).

Counter snapshots are *cumulative per process*, so merging keeps the
last snapshot per pid and sums across pids — a campaign's worker
processes all appending to one sink aggregate correctly.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.core import Histogram


def load_events(path: str) -> list[dict]:
    """Read a JSONL sink; a torn final line (process died mid-write) is
    skipped rather than poisoning the report."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def logical_sink(path: str) -> str:
    """The sink a file logically belongs to: ``sink.jsonl.1`` (the
    rotated generation, see ``ObsState._rotate_sink``) maps back to
    ``sink.jsonl``.  Counter snapshots merge last-per-(sink, pid), and
    a rotated generation is the *same* sink — keying by the physical
    path would double-count its cumulative snapshots."""
    return path[:-2] if path.endswith(".1") else path


def expand_sinks(patterns) -> list[str]:
    """Expand sink paths and globs into a sorted, deduplicated list.

    ``patterns`` is one path/glob or a sequence of them — this is what
    lets ``obs report 'runs/x/shard-*/obs.jsonl'`` cover a sharded
    cluster campaign with one argument.  A sink that has rotated
    (``sink.jsonl.1`` exists beside it) contributes both generations.
    """
    import glob as _glob
    import os as _os

    if isinstance(patterns, (str, bytes)):
        patterns = [patterns]
    paths: list[str] = []
    for pattern in patterns:
        pattern = str(pattern)
        if any(ch in pattern for ch in "*?["):
            paths.extend(_glob.glob(pattern))
        else:
            paths.append(pattern)
    for path in list(paths):
        rotated = path + ".1"
        if not path.endswith(".1") and _os.path.exists(rotated):
            paths.append(rotated)
    seen: set[str] = set()
    unique = []
    for path in sorted(paths):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def load_events_multi(patterns) -> list[dict]:
    """Read one or many sinks (globs allowed) into one event stream.

    Events from a multi-sink read are tagged with their source path in
    ``"_src"`` so :func:`merge_events` keeps counter snapshots
    last-per-``(sink, pid)`` and then sums — two shard sinks written by
    workers that happen to share a pid namespace still merge correctly.
    A single concrete path behaves exactly like :func:`load_events`.
    """
    paths = expand_sinks(patterns)
    if not paths:
        raise FileNotFoundError(
            f"no obs sink matches {patterns!r}"
        )
    if len(paths) == 1:
        return load_events(paths[0])
    events: list[dict] = []
    for path in paths:
        src = logical_sink(path)
        for event in load_events(path):
            event["_src"] = src
            events.append(event)
    events.sort(key=lambda e: float(e.get("ts", 0.0)))
    return events


def merge_warnings(events: list[dict]) -> list[dict]:
    """Deduplicate warning logs by ``warn_key``.

    ``warn_once`` dedupes per process, so a campaign's forked workers
    each emit the same warning once; here they collapse to one row with
    a count and the set of pids that raised it.  Warnings without a
    ``warn_key`` dedupe by message text."""
    merged: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "log" or event.get("level") != "warning":
            continue
        fields = event.get("fields") or {}
        key = str(fields.get("warn_key", event.get("msg", "?")))
        row = merged.setdefault(
            key,
            {
                "key": key,
                "msg": event.get("msg", ""),
                "count": 0,
                "pids": [],
            },
        )
        row["count"] += 1
        pid = event.get("pid")
        if pid is not None and pid not in row["pids"]:
            row["pids"].append(pid)
    for row in merged.values():
        row["pids"].sort()
    return sorted(merged.values(), key=lambda r: (-r["count"], r["key"]))


def merge_events(events: list[dict]) -> dict:
    """Aggregate a sink's events into one JSON-ready summary:
    ``{"counters", "histograms", "spans", "metrics", "warnings", ...}``."""
    # Last cumulative snapshot per (sink, pid), then summed.  The sink
    # half of the key is None for single-sink reads (identical to the
    # historical per-pid merge) and the source path for multi-sink
    # reads, so shard sinks with colliding pids still sum correctly.
    last_per_pid: dict = {}
    for event in events:
        if event.get("kind") == "counters":
            last_per_pid[(event.get("_src"), event.get("pid", 0))] = event
    counters: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    for snapshot in last_per_pid.values():
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, payload in snapshot.get("histograms", {}).items():
            histograms.setdefault(name, Histogram()).merge_dict(payload)

    spans: dict[str, dict] = {}
    metrics: dict[str, dict] = {}
    n_logs = 0
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            agg = spans.setdefault(
                event.get("name", "?"),
                {"count": 0, "total": 0.0, "max": 0.0, "errors": 0},
            )
            duration = float(event.get("dur", 0.0))
            agg["count"] += 1
            agg["total"] += duration
            if duration > agg["max"]:
                agg["max"] = duration
            if event.get("status") == "error":
                agg["errors"] += 1
        elif kind == "log":
            n_logs += 1
        elif kind == "metrics":
            prefix = event.get("name", "?")
            for key, value in (event.get("values") or {}).items():
                agg = metrics.setdefault(
                    f"{prefix}.{key}",
                    {
                        "count": 0,
                        "total": 0.0,
                        "min": float("inf"),
                        "max": float("-inf"),
                        "last": None,
                    },
                )
                value = float(value)
                agg["count"] += 1
                agg["total"] += value
                agg["min"] = min(agg["min"], value)
                agg["max"] = max(agg["max"], value)
                agg["last"] = value
    for agg in metrics.values():
        agg["mean"] = agg["total"] / agg["count"] if agg["count"] else 0.0
    return {
        "counters": dict(sorted(counters.items())),
        "histograms": {
            name: h.to_dict() for name, h in sorted(histograms.items())
        },
        "spans": dict(sorted(spans.items())),
        "metrics": dict(sorted(metrics.items())),
        "warnings": merge_warnings(events),
        "n_logs": n_logs,
        "n_events": len(events),
    }


def stitch_spans(events: list[dict]) -> dict:
    """Link a (possibly multi-sink) event stream's spans into a tree.

    Span ids are pid-prefixed, so a merged stream from scheduler and
    worker sinks stitches naturally: a worker span whose ``parent`` is
    a scheduler span id attaches to it the moment both sinks are read
    together.  Returns ``{"roots", "orphans", "children", "by_id"}``
    where roots have ``parent is None`` and orphans name a parent that
    never reached any of the sinks read (a killed worker's parent
    process, a sink glob that missed a shard, ...).
    """
    span_events = [e for e in events if e.get("kind") == "span"]
    children: dict[Optional[str], list[dict]] = {}
    for event in span_events:
        children.setdefault(event.get("parent"), []).append(event)
    by_id = {e.get("id"): e for e in span_events}
    roots = [e for e in span_events if e.get("parent") is None]
    orphans = [
        e
        for e in span_events
        if e.get("parent") is not None and e.get("parent") not in by_id
    ]
    return {
        "roots": roots,
        "orphans": orphans,
        "children": children,
        "by_id": by_id,
    }


def render_span_tree(
    events: list[dict], max_roots: int = 10, max_depth: int = 6
) -> str:
    """Reconstruct parent/child span nesting and render it indented,
    slowest roots first.

    Orphaned spans — ones naming a parent that never reached the sink
    (cross-pid parents whose sink wasn't merged in, a scheduler killed
    before emitting its campaign span) — are never dropped: they are
    grouped under one synthetic root at the end, each keeping its own
    subtree."""
    stitched = stitch_spans(events)
    if not stitched["by_id"]:
        return "(no spans)"
    children = stitched["children"]
    roots = sorted(
        stitched["roots"], key=lambda e: -float(e.get("dur", 0.0))
    )
    orphans = sorted(
        stitched["orphans"], key=lambda e: -float(e.get("dur", 0.0))
    )

    lines: list[str] = []

    def walk(event: dict, depth: int) -> None:
        if depth > max_depth:
            return
        marker = " !" if event.get("status") == "error" else ""
        fields = event.get("fields") or {}
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            if fields
            else ""
        )
        lines.append(
            f"{'  ' * depth}{event.get('name')}  "
            f"{float(event.get('dur', 0.0)) * 1e3:.2f} ms{marker}{suffix}"
        )
        kids = children.get(event.get("id"), [])
        kids.sort(key=lambda e: float(e.get("ts", 0.0)))
        for kid in kids:
            walk(kid, depth + 1)

    for root in roots[:max_roots]:
        walk(root, 0)
    if len(roots) > max_roots:
        lines.append(f"... and {len(roots) - max_roots} more root spans")
    if orphans:
        lines.append(
            f"(orphaned: {len(orphans)} span"
            f"{'s' if len(orphans) != 1 else ''} whose parent never "
            f"reached the sink)"
        )
        for orphan in orphans[:max_roots]:
            walk(orphan, 1)
        if len(orphans) > max_roots:
            lines.append(
                f"  ... and {len(orphans) - max_roots} more orphaned spans"
            )
    return "\n".join(lines)


ROOT_SPAN_NAMES = ("cluster.campaign", "campaign.run")


def trace_summary(events: list[dict]) -> dict:
    """Critical-path attribution for a merged campaign trace.

    Breaks the campaign root span's wall-clock into where the time
    went, using the telemetry every layer already emits:

    * ``queue_wait`` — the enqueue(eligible)→lease histogram
      (``cluster.lease_wait_seconds``), i.e. jobs ready but waiting
      for a worker;
    * ``compute`` — total ``campaign.job`` span time across workers
      (can exceed wall-clock: it sums over parallel workers);
    * ``retry_backoff`` — deliberate delay before re-running failed
      jobs (``cluster.backoff_seconds`` / ``campaign.backoff_seconds``);
    * ``merge`` — ``store.merge`` span time folding worker shards at
      finalize.

    Also reports the tree's health: trace ids seen, root span, span
    and orphan counts — the CI cluster drill asserts
    ``n_orphans == 0`` on exactly this structure.
    """
    merged = merge_events(events)
    stitched = stitch_spans(events)
    root = None
    for name in ROOT_SPAN_NAMES:
        named = [e for e in stitched["roots"] if e.get("name") == name]
        if named:
            root = max(named, key=lambda e: float(e.get("dur", 0.0)))
            break
    if root is None and stitched["roots"]:
        root = max(
            stitched["roots"], key=lambda e: float(e.get("dur", 0.0))
        )

    def _span_total(name: str) -> float:
        agg = merged["spans"].get(name)
        return float(agg["total"]) if agg else 0.0

    def _hist_total(name: str) -> float:
        h = merged["histograms"].get(name)
        return float(h["total"]) if h else 0.0

    trace_ids = sorted(
        {e["trace"] for e in events if e.get("trace") is not None}
    )
    return {
        "trace_ids": trace_ids,
        "root": None
        if root is None
        else {
            "name": root.get("name"),
            "id": root.get("id"),
            "dur": float(root.get("dur", 0.0)),
        },
        "wall_seconds": float(root.get("dur", 0.0)) if root else None,
        "queue_wait_seconds": _hist_total("cluster.lease_wait_seconds"),
        "compute_seconds": _span_total("campaign.job"),
        "retry_backoff_seconds": _hist_total("cluster.backoff_seconds")
        + _hist_total("campaign.backoff_seconds"),
        "merge_seconds": _span_total("store.merge"),
        "n_spans": len(stitched["by_id"]),
        "n_roots": len(stitched["roots"]),
        "n_orphans": len(stitched["orphans"]),
    }


def render_trace(
    events: list[dict], max_roots: int = 20, max_depth: int = 12
) -> str:
    """The ``obs report --trace`` view: the merged cross-pid span tree
    plus the critical-path breakdown of campaign wall-clock."""
    summary = trace_summary(events)
    lines: list[str] = []
    if summary["trace_ids"]:
        lines.append(f"trace: {', '.join(summary['trace_ids'])}")
    else:
        lines.append("trace: (no trace ids recorded)")
    lines.append(
        f"spans: {summary['n_spans']} "
        f"({summary['n_roots']} roots, {summary['n_orphans']} orphaned)"
    )
    lines += [
        "",
        "## span tree",
        render_span_tree(events, max_roots=max_roots, max_depth=max_depth),
    ]

    lines += ["", "## critical path"]
    if summary["root"] is None:
        lines.append("(no root span — cannot attribute wall-clock)")
        return "\n".join(lines)
    wall = summary["wall_seconds"] or 0.0

    def _row(label: str, seconds: float) -> str:
        share = f"{seconds / wall * 100.0:5.1f}%" if wall > 0 else "     -"
        return f"{label:<38} {seconds:>10.3f} s  {share}"

    lines.append(
        f"{'campaign wall-clock (' + str(summary['root']['name']) + ')':<38} "
        f"{wall:>10.3f} s"
    )
    lines.append(_row("  queue-wait (eligible -> leased)",
                      summary["queue_wait_seconds"]))
    lines.append(_row("  compute (campaign.job, all workers)",
                      summary["compute_seconds"]))
    lines.append(_row("  retry backoff", summary["retry_backoff_seconds"]))
    lines.append(_row("  shard merge (store.merge)",
                      summary["merge_seconds"]))
    lines.append(
        "(compute sums across parallel workers and may exceed wall-clock)"
    )
    return "\n".join(lines)


def render_report(events: list[dict]) -> str:
    """The full ``obs report`` text: counters, histograms, span
    aggregates, and the span tree."""
    merged = merge_events(events)
    lines: list[str] = [
        f"observability report: {merged['n_events']} events, "
        f"{merged['n_logs']} log lines"
    ]

    if merged["counters"]:
        lines += ["", "## counters", f"{'name':<44} {'value':>14}"]
        for name, value in merged["counters"].items():
            rendered = (
                f"{value:.0f}" if float(value).is_integer() else f"{value:.4f}"
            )
            lines.append(f"{name:<44} {rendered:>14}")

    if merged["histograms"]:
        lines += [
            "",
            "## histograms",
            f"{'name':<34} {'count':>8} {'mean':>12} {'min':>12} "
            f"{'max':>12} {'p50':>12} {'p95':>12} {'p99':>12}",
        ]

        def _q(h: dict, key: str) -> str:
            value = h.get(key)
            return f"{value:>12.6f}" if value is not None else f"{'-':>12}"

        for name, h in merged["histograms"].items():
            lines.append(
                f"{name:<34} {h['count']:>8} {h['mean']:>12.6f} "
                f"{h['min']:>12.6f} {h['max']:>12.6f} "
                f"{_q(h, 'p50')} {_q(h, 'p95')} {_q(h, 'p99')}"
            )

    if merged["metrics"]:
        lines += [
            "",
            "## job metrics",
            f"{'name':<44} {'count':>7} {'mean':>12} {'min':>12} "
            f"{'max':>12} {'last':>12}",
        ]
        for name, agg in merged["metrics"].items():
            lines.append(
                f"{name:<44} {agg['count']:>7} {agg['mean']:>12.6f} "
                f"{agg['min']:>12.6f} {agg['max']:>12.6f} "
                f"{agg['last']:>12.6f}"
            )

    if merged["spans"]:
        lines += [
            "",
            "## spans",
            f"{'name':<34} {'count':>8} {'total s':>10} {'mean ms':>10} "
            f"{'max ms':>10} {'errors':>7}",
        ]
        for name, agg in merged["spans"].items():
            mean_ms = agg["total"] / agg["count"] * 1e3 if agg["count"] else 0.0
            lines.append(
                f"{name:<34} {agg['count']:>8} {agg['total']:>10.3f} "
                f"{mean_ms:>10.2f} {agg['max'] * 1e3:>10.2f} "
                f"{agg['errors']:>7}"
            )
        lines += ["", "## span tree", render_span_tree(events)]

    if merged["warnings"]:
        lines += ["", "## warnings"]
        for row in merged["warnings"]:
            pids = len(row["pids"])
            lines.append(
                f"[x{row['count']}, {pids} pid{'s' if pids != 1 else ''}] "
                f"{row['msg']}"
            )

    if len(lines) == 1:
        lines.append("(sink holds no counters, histograms, or spans)")
    return "\n".join(lines)


def format_event(event: dict) -> str:
    """One event as one ``obs tail`` line."""
    kind = event.get("kind")
    ts = float(event.get("ts", 0.0))
    if kind == "log":
        fields = event.get("fields") or {}
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            if fields
            else ""
        )
        return (
            f"{ts:.3f} {event.get('level', '?'):<8} "
            f"{event.get('msg', '')}{suffix}"
        )
    if kind == "span":
        return (
            f"{ts:.3f} span     {event.get('name')} "
            f"{float(event.get('dur', 0.0)) * 1e3:.2f} ms "
            f"[{event.get('status', 'ok')}]"
        )
    if kind == "counters":
        return (
            f"{ts:.3f} counters pid={event.get('pid')} "
            f"{len(event.get('counters', {}))} counters, "
            f"{len(event.get('histograms', {}))} histograms"
        )
    if kind == "metrics":
        values = event.get("values") or {}
        rendered = " ".join(
            f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(values.items())
        )
        return f"{ts:.3f} metrics  {event.get('name', '?')} {rendered}"
    return f"{ts:.3f} {kind or '?'}"


def render_tail(events: list[dict], n: int = 20) -> str:
    """The last ``n`` events, formatted."""
    if not events:
        return "(no events)"
    return "\n".join(format_event(e) for e in events[-n:])
