"""Parallel, fault-tolerant campaign execution.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into
finished :class:`~repro.campaign.store.JobRecord` rows.  Its contract is
that **one bad job never kills a campaign**:

- every job gets a wall-clock budget (enforced with ``SIGALRM`` inside
  the worker, so even a runaway compression loop is interrupted);
- a failed attempt is retried up to ``spec.max_retries`` times with
  exponential backoff;
- a worker-process *crash* (which breaks the whole
  ``ProcessPoolExecutor``) is survived by rebuilding the pool and
  requeueing the jobs that were in flight;
- when retries are exhausted the failure is recorded in the store —
  with its error message — and the campaign moves on.

Parallelism comes from ``concurrent.futures.ProcessPoolExecutor``; the
``executor_factory`` argument swaps in :class:`InProcessExecutor` so the
whole machinery (including retries, timeouts and simulated crashes) runs
single-process and fast under test.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.campaign import executor as executor_mod
from repro.campaign.executor import (
    InjectedFailure,
    InProcessExecutor,
    JobTimeout,
    WorkerCrash,
    execute_payload,
)
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.obs import tracectx
from repro.campaign.store import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    JobRecord,
    ResultStore,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "InjectedFailure",
    "InProcessExecutor",
    "JobTimeout",
    "WorkerCrash",
    "execute_payload",
]


@dataclass
class _Attempt:
    """One scheduled execution of one job."""

    job: JobSpec
    position: int  # index in expansion order (fault-injection anchor)
    attempt: int = 0  # 0-based
    eligible_at: float = 0.0  # monotonic time before which we hold it back
    submitted_at: float = 0.0


@dataclass
class CampaignResult:
    """What a runner invocation did, in aggregate."""

    counts: dict = field(default_factory=dict)
    records: list = field(default_factory=list)
    skipped: int = 0
    elapsed_seconds: float = 0.0

    @property
    def completed(self) -> int:
        """Jobs that finished (any terminal status) this invocation."""
        return len(self.records)

    def summary(self) -> str:
        """One-line human digest."""
        parts = [f"{v} {k}" for k, v in sorted(self.counts.items())]
        if self.skipped:
            parts.append(f"{self.skipped} skipped (already recorded)")
        return (
            f"campaign: {', '.join(parts) or 'nothing to do'} "
            f"in {self.elapsed_seconds:.2f}s"
        )


class CampaignRunner:
    """Drives one campaign to completion against a result store.

    Args:
        spec: the campaign to run.
        store: where records and the manifest live.
        workers: parallel worker processes (ignored by a custom
            single-slot executor only in that submissions serialise).
        executor_factory: zero-arg callable building an executor; the
            default builds a ``ProcessPoolExecutor(workers)``.  Pass
            ``InProcessExecutor`` for in-process runs.
        on_event: optional callback receiving human-readable progress
            lines (the CLI prints them).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        executor_factory: Optional[Callable[[], object]] = None,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = max(1, workers)
        self._factory = executor_factory or (
            lambda: ProcessPoolExecutor(max_workers=self.workers)
        )
        self._on_event = on_event

    def _emit(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    # -- scheduling helpers --------------------------------------------
    def _payload(self, attempt: _Attempt) -> dict:
        job = attempt.job
        payload = {
            "job_id": job.job_id,
            "experiment": job.experiment,
            "params": job.params_dict(),
            "seed": job.seed,
            "timeout_seconds": self.spec.timeout_seconds,
            "attempt": attempt.attempt,
        }
        inject = self.spec.inject_failures
        if inject is not None and inject.applies_to(
            job, attempt.position, attempt.attempt
        ):
            payload["inject_mode"] = inject.mode
            payload["allow_hard_crash"] = getattr(
                self._executor, "supports_crash_isolation", True
            )
        return payload

    def _record(
        self,
        attempt: _Attempt,
        status: str,
        duration: float,
        metrics: Optional[dict] = None,
        error: Optional[str] = None,
        timeout_enforced: Optional[bool] = None,
    ) -> JobRecord:
        job = attempt.job
        record = JobRecord(
            job_id=job.job_id,
            experiment=job.experiment,
            params=job.params_dict(),
            trial=job.trial,
            seed=job.seed,
            status=status,
            attempts=attempt.attempt + 1,
            duration_seconds=duration,
            metrics=metrics,
            error=error,
            timeout_enforced=timeout_enforced,
        )
        self.store.append(record)
        return record

    def _retry_or_fail(
        self,
        attempt: _Attempt,
        status: str,
        error: str,
        pending: list,
        result: CampaignResult,
    ) -> None:
        """Requeue with backoff, or persist the terminal failure."""
        job = attempt.job
        if attempt.attempt < self.spec.max_retries:
            delay = self.spec.retry_backoff * (2**attempt.attempt)
            attempt.attempt += 1
            attempt.eligible_at = time.monotonic() + delay
            pending.append(attempt)
            obs.counter_add("campaign.retries")
            obs.observe("campaign.backoff_seconds", delay)
            self._emit(
                f"retry {job.job_id} (attempt {attempt.attempt + 1}, "
                f"after {delay:.2f}s): {error}"
            )
            return
        # The last attempt's wall clock: submission to now.  (This used
        # to be hard-zeroed — and the pool-rebuild path even reset
        # submitted_at before recording — so every terminal failure
        # reported duration_seconds=0.0.)
        duration = (
            time.monotonic() - attempt.submitted_at
            if attempt.submitted_at
            else 0.0
        )
        record = self._record(
            attempt,
            status,
            duration,
            error=error,
            timeout_enforced=self._timeout_enforced_hint(),
        )
        result.records.append(record)
        result.counts[status] = result.counts.get(status, 0) + 1
        obs.counter_add(f"campaign.{status}")
        obs.log(
            "warning",
            "job gave up",
            job_id=job.job_id,
            status=status,
            attempts=attempt.attempt + 1,
            error=error,
        )
        self._emit(f"gave up on {job.job_id} after {attempt.attempt + 1} "
                   f"attempts: {error}")

    def _timeout_enforced_hint(self) -> Optional[bool]:
        """What to record for ``timeout_enforced`` when the attempt
        itself could not report it (failure paths): ``False`` when a
        budget was requested but the platform cannot enforce it, else
        ``None`` (unknown / not applicable)."""
        if (
            self.spec.timeout_seconds is not None
            and not executor_mod.alarm_supported()
        ):
            return False
        return None

    def _handle_outcome(
        self,
        attempt: _Attempt,
        future: Future,
        pending: list,
        result: CampaignResult,
    ) -> bool:
        """Consume one finished future.  Returns True when the executor
        broke (caller must rebuild it)."""
        job = attempt.job
        obs.counter_add("campaign.attempts")
        try:
            out = future.result()
        except BrokenExecutor:
            return True
        except JobTimeout as exc:
            self._retry_or_fail(attempt, STATUS_TIMEOUT, str(exc), pending, result)
            return False
        except WorkerCrash as exc:
            self._retry_or_fail(attempt, STATUS_CRASHED, str(exc), pending, result)
            return False
        except Exception as exc:  # noqa: BLE001 — any job error is a job failure
            self._retry_or_fail(
                attempt,
                STATUS_FAILED,
                f"{type(exc).__name__}: {exc}",
                pending,
                result,
            )
            return False
        enforced = out.get("timeout_enforced")
        if enforced is False and obs.warn_once(
            "campaign.timeout-unenforced",
            "per-job wall-clock budgets are not enforceable here "
            "(no SIGALRM or worker off the main thread); jobs may "
            "overrun their budget",
            timeout_seconds=self.spec.timeout_seconds,
        ):
            self._emit(
                "warning: per-job timeout cannot be enforced on this "
                "platform (no SIGALRM); budgets are advisory"
            )
        record = self._record(
            attempt,
            STATUS_OK,
            out["duration"],
            metrics=out["metrics"],
            timeout_enforced=enforced,
        )
        result.records.append(record)
        result.counts[STATUS_OK] = result.counts.get(STATUS_OK, 0) + 1
        obs.counter_add("campaign.ok")
        obs.observe("campaign.job_seconds", out["duration"])
        self._emit(
            f"ok {job.job_id} {job.params_dict()} trial={job.trial} "
            f"({out['duration']:.2f}s, attempt {attempt.attempt + 1})"
        )
        return False

    # -- the main loop --------------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        """Execute every job that has no record yet; return aggregate
        counts.  With ``resume`` an existing campaign directory is
        continued instead of rejected."""
        start = time.monotonic()
        self.store.open_campaign(self.spec, resume=resume)

        all_jobs = self.spec.jobs()
        done_ids = self.store.completed_ids()
        pending = [
            _Attempt(job=job, position=position)
            for position, job in enumerate(all_jobs)
            if job.job_id not in done_ids
        ]
        result = CampaignResult(skipped=len(all_jobs) - len(pending))
        if result.skipped:
            self._emit(f"resume: skipping {result.skipped} recorded jobs")

        # Announce the run's shape up front: `repro obs watch` reads
        # this line to show done/total progress before any job lands.
        obs.log(
            "info",
            "campaign started",
            campaign=self.spec.name,
            experiment=self.spec.experiment,
            jobs=len(pending),
            workers=self.workers,
        )

        if (
            self.spec.timeout_seconds is not None
            and not executor_mod.alarm_supported()
        ):
            if obs.warn_once(
                "campaign.timeout-unenforced",
                "per-job wall-clock budgets are not enforceable here "
                "(no SIGALRM); jobs may overrun their budget",
                timeout_seconds=self.spec.timeout_seconds,
            ):
                self._emit(
                    "warning: per-job timeout cannot be enforced on this "
                    "platform (no SIGALRM); budgets are advisory"
                )

        run_span = obs.span(
            "campaign.run",
            campaign=self.spec.name,
            experiment=self.spec.experiment,
            jobs=len(pending),
            workers=self.workers,
        )
        self._executor = self._factory()
        in_flight: dict[Future, _Attempt] = {}
        observing = obs.enabled()
        trace_env_set = False
        try:
            run_span.__enter__()
            if observing:
                # Pool worker processes spawn lazily at first submit,
                # so exporting REPRO_OBS_TRACE here (trace id plus this
                # run span as the remote parent) is early enough for
                # every worker's spans to join this campaign's tree.
                trace_id = tracectx.begin_trace()
                trace_env_set = tracectx.export_to_env(
                    trace_id, run_span.span_id
                )
            while pending or in_flight:
                if observing:
                    obs.observe(
                        "campaign.queue_depth", len(pending) + len(in_flight)
                    )
                now = time.monotonic()
                # Fill free slots with eligible attempts.
                free = self.workers - len(in_flight)
                submitted_any = False
                for _ in range(free):
                    index = next(
                        (
                            i
                            for i, a in enumerate(pending)
                            if a.eligible_at <= now
                        ),
                        None,
                    )
                    if index is None:
                        break
                    attempt = pending.pop(index)
                    attempt.submitted_at = now
                    try:
                        future = self._executor.submit(
                            execute_payload, self._payload(attempt)
                        )
                    except BrokenExecutor:
                        # The pool was already dead; this attempt never
                        # ran, so requeue it without charging a retry.
                        pending.append(attempt)
                        self._rebuild(in_flight, pending, result)
                        break
                    in_flight[future] = attempt
                    submitted_any = True

                if not in_flight:
                    if pending and not submitted_any:
                        soonest = min(a.eligible_at for a in pending)
                        time.sleep(max(0.0, min(soonest - now, 0.2)))
                    continue

                finished, _ = wait(
                    set(in_flight), timeout=0.2, return_when=FIRST_COMPLETED
                )
                broke = False
                for future in finished:
                    attempt = in_flight.pop(future)
                    if self._handle_outcome(attempt, future, pending, result):
                        self._retry_or_fail(
                            attempt,
                            STATUS_CRASHED,
                            "worker process died (pool broken)",
                            pending,
                            result,
                        )
                        broke = True
                if broke:
                    self._rebuild(in_flight, pending, result)
        except KeyboardInterrupt:
            # Every finished job is already checkpointed (the store
            # flushes per record), so `campaign resume` picks up cleanly
            # at the first unrecorded job.  Cancel what we can and let
            # the interrupt propagate.
            obs.log(
                "warning",
                "campaign interrupted",
                campaign=self.spec.name,
                records_checkpointed=len(result.records) + result.skipped,
                pending=len(pending) + len(in_flight),
            )
            self._emit(
                f"interrupted: {len(result.records)} records checkpointed "
                f"this run; continue with `campaign resume {self.store.root}`"
            )
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 — best-effort cancellation
                pass
            raise
        finally:
            run_span.__exit__(None, None, None)
            if trace_env_set:
                os.environ.pop(tracectx.ENV_TRACE, None)
            self._executor.shutdown(wait=True)
            obs.flush()

        result.elapsed_seconds = time.monotonic() - start
        counts = dict(result.counts)
        counts["skipped"] = result.skipped
        self.store.finalize(counts)
        self._emit(result.summary())
        return result

    def _rebuild(
        self, in_flight: dict, pending: list, result: CampaignResult
    ) -> None:
        """A worker died and took the pool with it: charge every
        in-flight job one attempt (retry or record the crash), then
        start a fresh pool and keep going.

        Accounting invariants (pinned by
        ``tests/test_campaign_runner.py::TestBrokenPoolAccounting``):
        the job whose future raised ``BrokenExecutor`` was popped from
        ``in_flight`` and charged by the caller, so it is charged
        exactly once here too — and ``submitted_at`` is left intact so
        a terminal record keeps its real wall-clock duration (it was
        previously zeroed right before ``_retry_or_fail``, wiping the
        duration of every crash-terminated job)."""
        for attempt in list(in_flight.values()):
            self._retry_or_fail(
                attempt,
                STATUS_CRASHED,
                "worker process died (pool broken)",
                pending,
                result,
            )
        in_flight.clear()
        obs.counter_add("campaign.pool_rebuilds")
        self._emit("worker pool broke (crashed worker); rebuilding pool")
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 — a broken pool may refuse shutdown
            pass
        self._executor = self._factory()
