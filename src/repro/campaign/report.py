"""Aggregation and reporting over a campaign's result store.

Records are grouped into *cells* (one per distinct parameter
combination, pooling trials) and every numeric metric gets a mean,
standard deviation and 95 % confidence interval.  The renderer emits
EXPERIMENTS.md-style markdown: a header block with the campaign's
identity and outcome counts, then one table row per cell.

Failed jobs are never silently dropped: each cell row carries its
ok/failed split, and a campaign-level failure table lists every job that
exhausted its retries, with the recorded error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.campaign.store import STATUS_OK, JobRecord, ResultStore


@dataclass
class CellStats:
    """Aggregate of all trials at one grid cell."""

    params: dict
    n_ok: int = 0
    n_failed: int = 0
    metrics: dict = field(default_factory=dict)  # name -> list of values
    durations: list = field(default_factory=list)  # wall time per ok job

    def add(self, record: JobRecord) -> None:
        """Fold one record into the cell."""
        if record.ok and record.metrics is not None:
            self.n_ok += 1
            self.durations.append(record.duration_seconds)
            for key, value in record.metrics.items():
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    self.metrics.setdefault(key, []).append(float(value))
        else:
            self.n_failed += 1

    def mean(self, metric: str) -> Optional[float]:
        """Mean of one metric over the cell's successful trials."""
        values = self.metrics.get(metric)
        if not values:
            return None
        return sum(values) / len(values)

    def mean_duration(self) -> Optional[float]:
        """Mean wall time per successful job (None when all failed)."""
        if not self.durations:
            return None
        return sum(self.durations) / len(self.durations)

    def ci95(self, metric: str) -> Optional[float]:
        """Half-width of the normal-approximation 95 % confidence
        interval (0 for a single trial)."""
        values = self.metrics.get(metric)
        if not values:
            return None
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        return 1.96 * math.sqrt(var / n)


def aggregate_records(records: Iterable[JobRecord]) -> list[CellStats]:
    """Group records into per-cell statistics, in deterministic order.

    Crash-tolerant by construction: failed records count toward the
    cell's ``n_failed`` and simply contribute no metric samples.
    """
    cells: dict[tuple, CellStats] = {}
    for record in records:
        key = tuple(sorted(record.params.items()))
        cell = cells.get(key)
        if cell is None:
            cell = CellStats(params=dict(record.params))
            cells[key] = cell
        cell.add(record)
    return [cells[key] for key in sorted(cells, key=repr)]


def _metric_names(cells: list[CellStats]) -> list[str]:
    names: list[str] = []
    for cell in cells:
        for name in cell.metrics:
            if name not in names:
                names.append(name)
    return names


def _param_names(cells: list[CellStats]) -> list[str]:
    names: list[str] = []
    for cell in cells:
        for name in cell.params:
            if name not in names:
                names.append(name)
    return sorted(names)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.4g}"


def render_cells(cells: list[CellStats]) -> str:
    """The per-cell markdown table: parameters, job counts, mean wall
    time per job, and ``mean ± ci95`` per numeric metric."""
    if not cells:
        return "(no records)"
    params = _param_names(cells)
    metrics = _metric_names(cells)
    header = params + ["jobs ok", "jobs failed", "s/job"] + metrics
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for cell in cells:
        row = [str(cell.params.get(p, "")) for p in params]
        row += [str(cell.n_ok), str(cell.n_failed)]
        duration = cell.mean_duration()
        row.append("—" if duration is None else f"{duration:.2f}")
        for metric in metrics:
            mean = cell.mean(metric)
            if mean is None:
                row.append("—")
            else:
                ci = cell.ci95(metric)
                row.append(
                    _fmt(mean) if not ci else f"{_fmt(mean)} ± {_fmt(ci)}"
                )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_failures(records: Iterable[JobRecord]) -> str:
    """A table of terminally-failed jobs (empty string when none)."""
    failed = [r for r in records if not r.ok]
    if not failed:
        return ""
    lines = [
        "| job | params | trial | status | attempts | error |",
        "|---|---|---|---|---|---|",
    ]
    for r in sorted(failed, key=lambda r: r.job_id):
        lines.append(
            f"| {r.job_id} | {r.params} | {r.trial} | {r.status} "
            f"| {r.attempts} | {(r.error or '').replace('|', '/')} |"
        )
    return "\n".join(lines)


def campaign_status(store: ResultStore) -> dict:
    """Read-only progress snapshot from the JSONL checkpoint.

    Works identically on a live directory, a finished one, or a
    cluster run mid-flight (un-merged ``shard-*/`` records are folded
    in) — this is what ``repro campaign status <dir>`` prints, shared
    by local and cluster runs.
    """
    manifest = store.load_manifest()
    records = store.load_records(include_shards=True)
    by_status: dict[str, int] = {}
    retried = 0
    for record in records.values():
        by_status[record.status] = by_status.get(record.status, 0) + 1
        if record.attempts > 1:
            retried += 1
    n_jobs = int(manifest.get("n_jobs", 0))
    started = manifest.get("started_at")
    finished = manifest.get("finished_at")
    wall = None
    if started is not None:
        import time as _time

        wall = (finished or _time.time()) - started
    return {
        "name": manifest.get("spec", {}).get("name", store.root.name),
        "spec_hash": manifest.get("spec_hash"),
        "n_jobs": n_jobs,
        "recorded": len(records),
        "by_status": dict(sorted(by_status.items())),
        "retried": retried,
        "pending": max(0, n_jobs - len(records)),
        "finished": finished is not None,
        "wall_seconds": wall,
        "shards": len(store.shard_stores()),
    }


def render_status(status: dict) -> str:
    """One compact human block for :func:`campaign_status`."""
    done = status["by_status"].get(STATUS_OK, 0)
    failed = status["recorded"] - done
    lines = [
        f"campaign {status['name']} "
        f"({'finished' if status['finished'] else 'in progress'})",
        f"  jobs:    {status['recorded']}/{status['n_jobs']} recorded, "
        f"{status['pending']} pending",
        f"  done:    {done} ok, {failed} failed "
        f"({', '.join(f'{v} {k}' for k, v in status['by_status'].items() if k != STATUS_OK) or 'none terminal'})",
        f"  retried: {status['retried']} jobs needed more than one attempt",
    ]
    if status["shards"]:
        lines.append(f"  shards:  {status['shards']} worker shard dirs")
    if status["wall_seconds"] is not None:
        lines.append(f"  wall:    {status['wall_seconds']:.1f}s")
    return "\n".join(lines)


def render_report(store: ResultStore) -> str:
    """Full markdown report for one campaign directory."""
    manifest = store.load_manifest()
    records = list(store.load_records().values())
    cells = aggregate_records(records)
    spec = manifest.get("spec", {})
    n_ok = sum(1 for r in records if r.ok)
    n_failed = len(records) - n_ok

    lines = [
        f"# Campaign — {spec.get('name', store.root.name)}",
        "",
        f"- experiment: `{spec.get('experiment', '?')}`",
        f"- spec hash: `{manifest.get('spec_hash', '?')}`",
        f"- git revision: `{manifest.get('git_revision', '?')}`",
        f"- jobs: {manifest.get('n_jobs', '?')} declared, "
        f"{len(records)} recorded ({n_ok} ok, {n_failed} failed)",
    ]
    started = manifest.get("started_at")
    finished = manifest.get("finished_at")
    if started and finished:
        lines.append(f"- wall time: {finished - started:.1f}s")
    lines += ["", "## Results by cell", "", render_cells(cells)]
    failures = render_failures(records)
    if failures:
        lines += ["", "## Failed jobs", "", failures]
    lines.append("")
    return "\n".join(lines)
