"""Campaign specifications: parameter grids with deterministic seeds.

A :class:`CampaignSpec` declares *what* to run — a named experiment from
the registry, a grid of swept parameters, fixed parameters shared by
every cell, and a trial count — without saying anything about *how* it
runs (that is the runner's job).  Expansion into :class:`JobSpec` jobs
is deterministic: the same spec always yields the same jobs, the same
job ids and the same per-job seeds, which is what makes resume and
cross-machine reproduction possible.

Seeds are derived per job by hashing ``(base_seed, experiment, params,
trial)``, so two cells never share randomness by accident, adding a cell
to the grid never shifts the seeds of existing cells, and rerunning a
campaign with the same spec replays identical jobs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


def _canonical(obj: Any) -> str:
    """Deterministic JSON encoding used for hashing (sorted keys, no
    whitespace variance)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, experiment: str, params: dict, trial: int) -> int:
    """Deterministic 63-bit seed for one job.

    Independent of grid declaration order and of which other cells the
    campaign contains: only the job's own coordinates matter.
    """
    payload = _canonical(
        {
            "base_seed": base_seed,
            "experiment": experiment,
            "params": params,
            "trial": trial,
        }
    )
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: an experiment call at one grid cell and trial."""

    job_id: str
    experiment: str
    params: tuple  # sorted (name, value) pairs — hashable cell identity
    trial: int
    seed: int

    def params_dict(self) -> dict:
        """The cell's parameters as a plain dict (what the experiment
        function receives)."""
        return dict(self.params)


@dataclass
class FaultInjection:
    """Deliberate first-attempt failures, for drills and tests.

    The runner consults this before each attempt; an injected job fails
    its first ``attempts`` attempts (with an exception, or by killing the
    worker process when ``mode`` is ``"crash"``) and then behaves
    normally — proving in production that retry and crash recovery work.
    """

    count: int = 0  # inject into the first N jobs (by expansion order)
    jobs: list = field(default_factory=list)  # ... and/or these job ids
    attempts: int = 1  # how many leading attempts fail
    mode: str = "exception"  # "exception" | "crash"

    def applies_to(self, job: JobSpec, position: int, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) of this job
        should be made to fail."""
        if attempt >= self.attempts:
            return False
        return position < self.count or job.job_id in self.jobs

    def to_dict(self) -> dict:
        """JSON-ready form for the manifest."""
        return {
            "count": self.count,
            "jobs": list(self.jobs),
            "attempts": self.attempts,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultInjection":
        """Inverse of :meth:`to_dict`."""
        return cls(
            count=int(data.get("count", 0)),
            jobs=list(data.get("jobs", [])),
            attempts=int(data.get("attempts", 1)),
            mode=str(data.get("mode", "exception")),
        )


@dataclass
class CampaignSpec:
    """A declarative sweep: experiment × grid × trials.

    Args:
        name: campaign name (also the default result-directory name).
        experiment: registry name from
            :mod:`repro.campaign.experiments`.
        grid: swept parameters, ``{name: [value, ...]}``; cells are the
            cartesian product.
        fixed: parameters held constant across all cells.
        trials: independent repetitions per cell (distinct seeds).
        base_seed: root of the per-job seed derivation.
        timeout_seconds: per-job wall-clock budget (None = unlimited).
        max_retries: extra attempts after a failed first attempt.
        retry_backoff: base delay before a retry, doubled per attempt.
        inject_failures: optional :class:`FaultInjection` drill.
    """

    name: str
    experiment: str
    grid: dict = field(default_factory=dict)
    fixed: dict = field(default_factory=dict)
    trials: int = 1
    base_seed: int = 0
    timeout_seconds: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    inject_failures: Optional[FaultInjection] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters both swept and fixed: {sorted(overlap)}")
        for key, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid axis {key!r} must be a non-empty list")

    # -- expansion ------------------------------------------------------
    def cells(self) -> Iterator[dict]:
        """Every grid cell merged with the fixed parameters, in
        deterministic (sorted-axis, declared-value) order."""
        axes = sorted(self.grid)
        for combo in itertools.product(*(self.grid[a] for a in axes)):
            cell = dict(self.fixed)
            cell.update(zip(axes, combo))
            yield cell

    def jobs(self) -> list[JobSpec]:
        """Expand the grid × trials into concrete jobs."""
        out: list[JobSpec] = []
        for cell in self.cells():
            for trial in range(self.trials):
                seed = derive_seed(self.base_seed, self.experiment, cell, trial)
                job_id = hashlib.sha256(
                    _canonical(
                        {
                            "base_seed": self.base_seed,
                            "experiment": self.experiment,
                            "params": cell,
                            "trial": trial,
                        }
                    ).encode()
                ).hexdigest()[:16]
                out.append(
                    JobSpec(
                        job_id=job_id,
                        experiment=self.experiment,
                        params=tuple(sorted(cell.items())),
                        trial=trial,
                        seed=seed,
                    )
                )
        return out

    def n_jobs(self) -> int:
        """Campaign size without materialising the jobs."""
        n = self.trials
        for values in self.grid.values():
            n *= len(values)
        return n

    # -- identity / serialisation --------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (stored verbatim in the manifest)."""
        out = {
            "name": self.name,
            "experiment": self.experiment,
            "grid": self.grid,
            "fixed": self.fixed,
            "trials": self.trials,
            "base_seed": self.base_seed,
            "timeout_seconds": self.timeout_seconds,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }
        if self.inject_failures is not None:
            out["inject_failures"] = self.inject_failures.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Build a spec from its JSON form, rejecting unknown keys so a
        typo in a spec file fails loudly instead of silently running the
        default."""
        known = {
            "name",
            "experiment",
            "grid",
            "fixed",
            "trials",
            "base_seed",
            "timeout_seconds",
            "max_retries",
            "retry_backoff",
            "inject_failures",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        inject = data.get("inject_failures")
        return cls(
            name=data["name"],
            experiment=data["experiment"],
            grid=dict(data.get("grid", {})),
            fixed=dict(data.get("fixed", {})),
            trials=int(data.get("trials", 1)),
            base_seed=int(data.get("base_seed", 0)),
            timeout_seconds=data.get("timeout_seconds"),
            max_retries=int(data.get("max_retries", 2)),
            retry_backoff=float(data.get("retry_backoff", 0.05)),
            inject_failures=(
                FaultInjection.from_dict(inject) if inject is not None else None
            ),
        )

    @classmethod
    def from_json_file(cls, path) -> "CampaignSpec":
        """Load a spec from a JSON file (the CLI's input format)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def spec_hash(self) -> str:
        """Content hash identifying the campaign; resume refuses to mix
        records from different specs."""
        return hashlib.sha256(_canonical(self.to_dict()).encode()).hexdigest()[:16]
