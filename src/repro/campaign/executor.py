"""One job attempt, executed wherever the work landed.

This is the execution core shared by every way the repo runs campaign
jobs: the single-host :class:`~repro.campaign.runner.CampaignRunner`
ships :func:`execute_payload` into ``ProcessPoolExecutor`` workers, and
the :mod:`repro.cluster` worker protocol calls :func:`run_attempt`
inside remote worker processes.  Keeping it in one module is what makes
the determinism contract cheap to state: a job's metrics are a pure
function of ``(experiment, params, seed)``, so the same payload yields
bit-identical metrics no matter which executor ran it.

The payload is a plain JSON-able dict (picklable *and* wire-encodable):

``job_id, experiment, params, seed, attempt, timeout_seconds`` plus the
optional fault-injection fields ``inject_mode``/``allow_hard_crash``
and an optional ``trace`` field — an obs trace context
(:func:`repro.obs.tracectx.wire_context`) adopted for the duration of
the attempt, so the job's spans parent to the campaign span of
whichever process scheduled it.  ``trace`` never reaches the
experiment function: metrics stay a pure function of
``(experiment, params, seed)``.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.campaign.store import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
)


class JobTimeout(Exception):
    """A job exceeded its per-job wall-clock budget."""


class WorkerCrash(Exception):
    """Stand-in for a hard worker death when crash isolation is off
    (the in-process executor cannot survive a real ``os._exit``)."""


class InjectedFailure(Exception):
    """A failure forced by the spec's fault-injection drill."""


def alarm_supported() -> bool:
    """Whether this platform can enforce per-job wall-clock budgets
    (``SIGALRM`` exists — Windows and some embedded Pythons lack it).
    Split out so tests can stub the no-SIGALRM path."""
    return hasattr(signal, "SIGALRM")


def execute_payload(payload: dict) -> dict:
    """Run one job attempt.  Executes inside a worker process (or inline
    under the in-process executor); everything it touches must be
    picklable and importable.
    """
    inject_mode = payload.get("inject_mode")
    if inject_mode == "crash":
        if payload.get("allow_hard_crash"):
            import os

            os._exit(23)  # simulate a segfaulting worker
        raise WorkerCrash("injected worker crash")
    if inject_mode == "exception":
        raise InjectedFailure(
            f"injected failure (attempt {payload['attempt']})"
        )

    from repro.campaign.experiments import get_experiment

    fn = get_experiment(payload["experiment"])
    timeout = payload.get("timeout_seconds")
    use_alarm = (
        timeout is not None
        and alarm_supported()
        and threading.current_thread() is threading.main_thread()
    )

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {timeout}s budget")

    from repro.obs import tracectx

    start = time.perf_counter()
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        with tracectx.adopted(payload.get("trace")), obs.span(
            "campaign.job",
            job_id=payload.get("job_id"),
            experiment=payload["experiment"],
            attempt=payload["attempt"],
        ):
            metrics = fn(payload["params"], payload["seed"])
        if isinstance(metrics, dict):
            # Stream the job's numeric metrics into the sink so `repro
            # obs watch` can roll them live and the store's diag.json
            # timeseries has per-job points.  Reads the dict only —
            # the non-perturbation invariant holds.
            obs.publish_metrics(
                "campaign.job",
                metrics,
                job_id=payload.get("job_id"),
                experiment=payload["experiment"],
            )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        # Pool workers outlive jobs and are torn down without atexit
        # hooks running reliably; snapshots are cumulative per pid, so
        # flushing after every job keeps the sink's last-per-pid merge
        # correct without double counting.
        obs.flush()
    if not isinstance(metrics, dict):
        raise TypeError(
            f"experiment {payload['experiment']!r} returned "
            f"{type(metrics).__name__}, expected a metrics dict"
        )
    return {
        "metrics": metrics,
        "duration": time.perf_counter() - start,
        # None: no budget requested; False: budget silently unenforceable
        # on this platform/thread — the runner surfaces it on the record.
        "timeout_enforced": use_alarm if timeout is not None else None,
    }


def classify_failure(exc: BaseException) -> tuple[str, str]:
    """Map an attempt's exception to a ``(status, error)`` pair, the
    same way the single-host runner's future handling does."""
    if isinstance(exc, JobTimeout):
        return STATUS_TIMEOUT, str(exc)
    if isinstance(exc, WorkerCrash):
        return STATUS_CRASHED, str(exc)
    return STATUS_FAILED, f"{type(exc).__name__}: {exc}"


@dataclass
class AttemptOutcome:
    """What one in-worker attempt produced, exception-free.

    ``status`` is one of the store's ``STATUS_*`` constants; ``metrics``
    is populated only on success.  This is the cluster worker's view of
    :func:`execute_payload` — the local runner keeps the raw exception
    flow because its futures already carry it.
    """

    status: str
    duration: float
    metrics: Optional[dict] = None
    error: Optional[str] = None
    timeout_enforced: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """Whether the attempt produced usable metrics."""
        return self.status == STATUS_OK


def run_attempt(payload: dict) -> AttemptOutcome:
    """Execute one attempt and fold any failure into the outcome.

    ``KeyboardInterrupt`` and ``SystemExit`` still propagate — a worker
    being told to die is not a job failure.
    """
    start = time.perf_counter()
    try:
        out = execute_payload(payload)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 — any job error is a job failure
        status, error = classify_failure(exc)
        enforced: Optional[bool] = None
        if payload.get("timeout_seconds") is not None and not alarm_supported():
            enforced = False
        return AttemptOutcome(
            status=status,
            duration=time.perf_counter() - start,
            error=error,
            timeout_enforced=enforced,
        )
    return AttemptOutcome(
        status=STATUS_OK,
        duration=out["duration"],
        metrics=out["metrics"],
        timeout_enforced=out["timeout_enforced"],
    )


class InProcessExecutor:
    """A drop-in executor that runs submissions synchronously.

    Keeps tests (and debugging sessions) single-process while exercising
    the runner's full retry/timeout/crash logic.
    """

    supports_crash_isolation = False

    def submit(self, fn, *args, **kwargs):
        """Execute immediately; return an already-resolved future."""
        from concurrent.futures import Future

        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 — mirrored into the future
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Nothing to tear down."""
