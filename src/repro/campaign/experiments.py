"""The experiment registry: every campaign-runnable entry point.

An *experiment* is a plain function ``fn(params: dict, seed: int) ->
dict`` — picklable, importable, all inputs in ``params``/``seed`` and
all outputs JSON-serialisable — which is exactly what lets the runner
ship it across a process boundary and the store persist its result.

The built-in registrations adapt the reproduction's existing entry
points (TaintChannel gadget scan, the Section V SGX extraction, the
Section VI fingerprinting, the Section IV recovery survey, and the
Section VIII mitigation costing) plus a noisy-channel variant of the
LZW recovery used by the demo campaign.  Downstream code registers its
own with :func:`register_experiment`.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

ExperimentFn = Callable[[dict, int], dict]

_REGISTRY: Dict[str, ExperimentFn] = {}


def register_experiment(name: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator: register ``fn(params, seed) -> metrics`` under a name.

    Re-registering a name overwrites it (tests replace built-ins with
    fast stand-ins)."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        _REGISTRY[name] = fn
        return fn

    return wrap


def get_experiment(name: str) -> ExperimentFn:
    """Look up a registered experiment; KeyError lists what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def available_experiments() -> list[str]:
    """Names of all registered experiments."""
    return sorted(_REGISTRY)


def make_input(kind: str, size: int, seed: int) -> bytes:
    """The shared input factory for campaign experiments (mirrors the
    CLI's ``--random/--lowercase/--text`` input kinds)."""
    from repro.workloads import english_like, lowercase_ascii, random_bytes

    if kind == "random":
        return random_bytes(size, seed=seed)
    if kind == "lowercase":
        return lowercase_ascii(size, seed=seed)
    if kind == "text":
        return english_like(size, seed=seed)
    raise ValueError(f"unknown input kind {kind!r}")


# -- built-in experiments ------------------------------------------------


@register_experiment("lzw_recovery")
def lzw_recovery(params: dict, seed: int) -> dict:
    """Section IV-C recovery over a noisy cache-line trace.

    Params: ``size`` (input bytes, default 200), ``input_kind``
    (default ``random``), ``noise`` (per-observation corruption
    probability, default 0 — the survey's idealised channel).  A
    corrupted observation is displaced by one cache line, the classic
    Prime+Probe neighbour error.
    """
    from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY, lzw_compress
    from repro.exec import InstrumentationTier, TracingContext
    from repro.recovery import recover_lzw_input

    size = int(params.get("size", 200))
    noise = float(params.get("noise", 0.0))
    data = make_input(params.get("input_kind", "random"), size, seed)

    # Recovery only reads the access stream: skip the data-flow records.
    ctx = TracingContext(tier=InstrumentationTier.ADDRESS_ONLY)
    lzw_compress(data, ctx=ctx)
    lines = [
        a.address >> 6
        for a in ctx.tainted_accesses()
        if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
    ]

    rng = random.Random(seed ^ 0xC0FFEE)
    corrupted = 0
    noisy = []
    for line in lines:
        if noise > 0.0 and rng.random() < noise:
            corrupted += 1
            line += rng.choice((-1, 1))
        noisy.append(line)

    candidates = recover_lzw_input(noisy, ctx.arrays["htab"].base, size)
    return {
        "exact_found": data in candidates,
        "n_candidates": len(candidates),
        "n_observations": len(lines),
        "n_corrupted": corrupted,
    }


@register_experiment("taintchannel_scan")
def taintchannel_scan(params: dict, seed: int) -> dict:
    """TaintChannel gadget scan over a named target.

    Params: ``target`` (zlib/lzw/bzip2/aes), ``size``, ``input_kind``,
    ``carry_aware``, ``max_events``.
    """
    from repro.core.taintchannel import run_gadget_scan

    data = make_input(
        params.get("input_kind", "random"), int(params.get("size", 200)), seed
    )
    return run_gadget_scan(
        params.get("target", "zlib"),
        data,
        carry_aware_add=bool(params.get("carry_aware", False)),
        max_events=int(params.get("max_events", 2_000_000)),
    )


@register_experiment("sgx_attack")
def sgx_attack(params: dict, seed: int) -> dict:
    """The Section V SGX extraction attack (CAT/frame-selection/noise
    knobs as params; ``secret_seed`` pins the buffer across cells)."""
    from repro.core.zipchannel import run_extraction_experiment

    return run_extraction_experiment(
        size=int(params.get("size", 200)),
        seed=seed,
        noise=int(params.get("noise", 2)),
        use_cat=bool(params.get("use_cat", True)),
        use_frame_selection=bool(params.get("use_frame_selection", True)),
        mitigated=bool(params.get("mitigated", False)),
        secret_seed=params.get("secret_seed"),
    )


@register_experiment("fingerprint")
def fingerprint(params: dict, seed: int) -> dict:
    """The Section VI Flush+Reload fingerprinting attack."""
    from repro.core.zipchannel import run_fingerprint_experiment

    return run_fingerprint_experiment(
        corpus=params.get("corpus", "lipsum"),
        traces=int(params.get("traces", 10)),
        epochs=int(params.get("epochs", 20)),
        seed=seed,
        hidden=int(params.get("hidden", 96)),
    )


@register_experiment("fingerprint_dataset")
def fingerprint_dataset(params: dict, seed: int) -> dict:
    """The Section VI dataset *build* alone — victim timelines plus
    noisy captures, no classifier training.

    This is the substrate-bound half of the fingerprint pipeline (the
    MLP is numpy-bound), so it is what ``repro perf`` times as the FIG7
    bench.  Metrics fingerprint the dataset content so a faster build
    that changes a single sample is caught.

    Params: ``corpus`` (``brotli`` | ``lipsum``), ``traces``,
    ``work_factor``, ``max_file_bytes`` (truncate every corpus file;
    how the quick perf pin keeps CI runs short).
    """
    import hashlib

    from repro.core.zipchannel.fingerprint import build_dataset
    from repro.workloads import brotli_like_corpus, repetitiveness_series

    corpus = params.get("corpus", "lipsum")
    if corpus == "brotli":
        files = list(brotli_like_corpus().values())
    elif corpus == "lipsum":
        files = repetitiveness_series()
    else:
        raise ValueError(f"unknown corpus {corpus!r}")
    max_bytes = params.get("max_file_bytes")
    if max_bytes is not None:
        files = [f[: int(max_bytes)] for f in files]
    x, y, timelines = build_dataset(
        files,
        traces_per_file=int(params.get("traces", 10)),
        seed=seed,
        work_factor=params.get("work_factor"),
    )
    digest = hashlib.sha256()
    digest.update(x.tobytes())
    digest.update(y.tobytes())
    return {
        "n_samples": int(x.shape[0]),
        "n_features": int(x.shape[1]),
        "dataset_sha256": digest.hexdigest(),
        "paths": [";".join(tl.paths) for tl in timelines],
        "total_duration": sum(tl.duration for tl in timelines),
    }


@register_experiment("survey_recovery")
def survey_recovery(params: dict, seed: int) -> dict:
    """The Section IV survey: recover one input through each of the
    three compressors' gadgets, noise-free channel."""
    from repro.compression import deflate_compress, lzw_compress
    from repro.compression.bzip2 import SITE_FTAB
    from repro.compression.bzip2.blocksort import histogram
    from repro.compression.lz77 import SITE_HEAD
    from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY
    from repro.exec import InstrumentationTier, TracingContext
    from repro.recovery import observed_lines, recover_lzw_input
    from repro.recovery.bzip2_recover import (
        observations_from_lines,
        recover_bzip2_block,
    )
    from repro.recovery.zlib_recover import accuracy, recover_known_high_bits
    from repro.workloads import lowercase_ascii, random_bytes

    n = int(params.get("size", 300))

    # All three recoveries consume only the memory-access stream.
    tier = InstrumentationTier.ADDRESS_ONLY

    data = lowercase_ascii(n, seed=seed)
    ctx = TracingContext(tier=tier)
    deflate_compress(data, ctx=ctx)
    rec = recover_known_high_bits(
        observed_lines(ctx, SITE_HEAD, kind="write"), ctx.arrays["head"].base, n
    )
    zlib_accuracy = accuracy(rec, data)

    data = random_bytes(n, seed=seed)
    ctx = TracingContext(tier=tier)
    lzw_compress(data, ctx=ctx)
    lines = [
        a.address >> 6
        for a in ctx.tainted_accesses()
        if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
    ]
    cands = recover_lzw_input(lines, ctx.arrays["htab"].base, n)
    lzw_found = data in cands

    data = random_bytes(n, seed=seed + 1)
    ctx = TracingContext(tier=tier)
    block = ctx.array("block", n)
    for i, v in enumerate(ctx.input_bytes(data)):
        block.set(i, v)
    histogram(ctx, block, n)
    obs = observations_from_lines(observed_lines(ctx, SITE_FTAB), n)
    result = recover_bzip2_block(obs, ctx.arrays["ftab"].base, n)

    return {
        "zlib_accuracy": zlib_accuracy,
        "lzw_exact_found": lzw_found,
        "lzw_candidates": len(cands),
        "bzip2_bit_accuracy": result.bit_accuracy(data),
    }


@register_experiment("trace_capture")
def trace_capture(params: dict, seed: int) -> dict:
    """Capture victim traces into a :class:`repro.traces.TraceStore`.

    The capture half of a capture-once/analyze-many campaign: one sweep
    runs this into a shared store, a second sweep runs
    ``survey_from_store`` / ``fingerprint_from_store`` against it.

    Params: ``store`` (directory, required), ``kind`` (``survey`` |
    ``fingerprint``), ``sweep_seed`` (pins the trace ids so analysis
    cells can find them; defaults to the job seed), plus ``size`` for
    survey captures and ``corpus``/``traces``/``work_factor`` for
    fingerprint captures.
    """
    from repro.traces import TraceStore
    from repro.traces.capture import (
        capture_fingerprint_traces,
        capture_survey_traces,
    )

    store = TraceStore(params["store"])
    kind = params.get("kind", "survey")
    sweep_seed = int(params.get("sweep_seed", seed))
    if kind == "survey":
        entries = capture_survey_traces(
            store,
            size=int(params.get("size", 300)),
            seed=sweep_seed,
            overwrite=True,
        )
    elif kind == "fingerprint":
        corpus = params.get("corpus", "lipsum")
        traces = int(params.get("traces", 10))
        entries = [
            capture_fingerprint_traces(
                store,
                f"fingerprint-{corpus}-t{traces}-s{sweep_seed}",
                corpus=corpus,
                traces_per_file=traces,
                seed=sweep_seed,
                work_factor=params.get("work_factor"),
                overwrite=True,
                extra_meta={"experiment": "fingerprint"},
            )
        ]
    else:
        raise ValueError(f"unknown capture kind {kind!r}")
    return {
        "trace_ids": [e.trace_id for e in entries],
        "n_records": sum(e.n_records for e in entries),
        "size_bytes": sum(e.size_bytes for e in entries),
    }


@register_experiment("survey_from_store")
def survey_from_store(params: dict, seed: int) -> dict:
    """The Section IV survey, replayed from stored traces.

    Same metrics dict as ``survey_recovery`` — but the victim is never
    re-simulated.  Params: ``store``, ``size``, ``sweep_seed`` (must
    match the capture cell; defaults to the job seed).
    """
    from repro.traces import TraceStore
    from repro.traces.replay import survey_from_store as replay_survey

    return replay_survey(
        TraceStore(params["store"]),
        size=int(params.get("size", 300)),
        sweep_seed=int(params.get("sweep_seed", seed)),
    )


@register_experiment("fingerprint_from_store")
def fingerprint_from_store(params: dict, seed: int) -> dict:
    """The Section VI classifier, trained from stored traces.

    Params: ``store``, ``trace_id`` (or ``corpus``/``traces``/
    ``sweep_seed`` to derive the id the capture cell used), ``epochs``,
    ``hidden``; the job seed drives the split/initialisation exactly as
    in the live ``fingerprint`` experiment.
    """
    from repro.traces import TraceStore
    from repro.traces.replay import fingerprint_experiment_from_store

    trace_id = params.get("trace_id")
    if trace_id is None:
        corpus = params.get("corpus", "lipsum")
        traces = int(params.get("traces", 10))
        sweep_seed = int(params.get("sweep_seed", seed))
        trace_id = f"fingerprint-{corpus}-t{traces}-s{sweep_seed}"
    return fingerprint_experiment_from_store(
        TraceStore(params["store"]),
        trace_id,
        epochs=int(params.get("epochs", 20)),
        seed=seed,
        hidden=int(params.get("hidden", 96)),
    )


# Process-level store cache for the replay benches: capture once per
# (kind, pin) per process, then every timed repeat measures replay
# alone.  Keyed by the full capture pin so distinct bench params never
# share a store; the scratch directories are removed at process exit.
_BENCH_STORES: Dict[tuple, object] = {}


def _bench_store(key: tuple, capture) -> object:
    store = _BENCH_STORES.get(key)
    if store is None:
        import atexit
        import shutil
        import tempfile

        from repro.traces import TraceStore

        scratch = tempfile.mkdtemp(prefix="repro-bench-store-")
        atexit.register(shutil.rmtree, scratch, True)
        store = TraceStore(scratch).open()
        capture(store)
        _BENCH_STORES[key] = store
    return store


def _survey_replay_store(params: dict, size: int, sweep_seed: int):
    from repro.traces.capture import capture_survey_traces

    path = params.get("store")
    if path is not None:
        from repro.traces import TraceStore

        store = TraceStore(path).open()
        ids = {e.trace_id for e in store.list()}
        if f"survey-zlib-n{size}-s{sweep_seed}" not in ids:
            capture_survey_traces(store, size=size, seed=sweep_seed,
                                  overwrite=True)
        return store
    return _bench_store(
        ("survey", size, sweep_seed),
        lambda store: capture_survey_traces(
            store, size=size, seed=sweep_seed, overwrite=True
        ),
    )


@register_experiment("survey_replay")
def survey_replay(params: dict, seed: int) -> dict:
    """Replay the three survey line streams from a stored sweep.

    The from-store analysis hot path in isolation: store read, chunk
    decode, site/kind filter, ``>> 6``.  ``mode`` selects the columnar
    (``array``) or per-record-object (``object``) decoder; the metrics
    fingerprint the line streams and deliberately exclude ``mode``, so
    the perf harness flags any divergence between the two decoders as a
    digest mismatch.

    Params: ``size``, ``sweep_seed`` (defaults to the job seed),
    ``mode`` (``array`` | ``object``), optional ``store`` path (default:
    a per-process scratch store, captured on first use).
    """
    import hashlib

    from repro.traces.replay import target_lines

    size = int(params.get("size", 600))
    sweep_seed = int(params.get("sweep_seed", seed))
    mode = params.get("mode", "array")
    if mode not in ("array", "object"):
        raise ValueError(f"unknown replay mode {mode!r}")
    store = _survey_replay_store(params, size, sweep_seed)
    digest = hashlib.sha256()
    out: dict = {}
    for target in ("zlib", "lzw", "bzip2"):
        lines = target_lines(
            store,
            f"survey-{target}-n{size}-s{sweep_seed}",
            target,
            use_columns=(mode == "array"),
        )
        out[f"{target}_lines"] = int(lines.shape[0])
        digest.update(lines.astype("<i8").tobytes())
    out["lines_sha256"] = digest.hexdigest()
    return out


@register_experiment("fig7_replay")
def fig7_replay(params: dict, seed: int) -> dict:
    """Reassemble the Fig. 7 classifier dataset from a stored trace.

    The from-store counterpart of ``fingerprint_dataset``: pooling and
    flattening only, no victim, no classifier.  Same ``mode`` contract
    as ``survey_replay`` — the dataset digest excludes it, pinning the
    columnar path to the object path.

    Params: ``corpus``, ``traces``, ``sweep_seed`` (defaults to the job
    seed), ``work_factor``, ``max_file_bytes``, ``mode``, optional
    ``store`` path.
    """
    import hashlib

    from repro.traces.capture import capture_fingerprint_traces
    from repro.traces.replay import dataset_from_store

    corpus = params.get("corpus", "lipsum")
    traces = int(params.get("traces", 10))
    sweep_seed = int(params.get("sweep_seed", seed))
    mode = params.get("mode", "array")
    if mode not in ("array", "object"):
        raise ValueError(f"unknown replay mode {mode!r}")
    work_factor = params.get("work_factor")
    max_file_bytes = params.get("max_file_bytes")
    trace_id = f"fingerprint-{corpus}-t{traces}-s{sweep_seed}"

    def capture(store) -> None:
        capture_fingerprint_traces(
            store,
            trace_id,
            corpus=corpus,
            traces_per_file=traces,
            seed=sweep_seed,
            work_factor=work_factor,
            overwrite=True,
            max_file_bytes=max_file_bytes,
        )

    path = params.get("store")
    if path is not None:
        from repro.traces import TraceStore

        store = TraceStore(path).open()
        if trace_id not in {e.trace_id for e in store.list()}:
            capture(store)
    else:
        store = _bench_store(
            ("fig7", corpus, traces, sweep_seed, work_factor, max_file_bytes),
            capture,
        )
    x, y = dataset_from_store(store, trace_id, use_columns=(mode == "array"))
    digest = hashlib.sha256()
    digest.update(x.tobytes())
    digest.update(y.astype("<i8").tobytes())
    return {
        "n_samples": int(x.shape[0]),
        "n_features": int(x.shape[1]),
        "dataset_sha256": digest.hexdigest(),
    }


@register_experiment("probe_sweep")
def probe_sweep(params: dict, seed: int) -> dict:
    """Prime+Probe measurement rounds against background noise — the
    batched cache API (`access_many_silent` / `access_many_timed`) hot
    path, with no victim in the loop.

    Params: ``rounds``, ``locations`` (monitored set size), ``ways``
    (primed lines per location), ``noise_rate`` (noise lines per round),
    plus the cache geometry (``n_slices``, ``sets_per_slice``,
    ``cache_ways`` — default small enough that the noise actually
    contends with the primed lines).
    """
    from repro.cache import BackgroundNoise, Cache, CacheConfig
    from repro.sidechannel.prime_probe import AttackerMemory, PrimeProbe

    rounds = int(params.get("rounds", 200))
    n_locations = int(params.get("locations", 256))
    ways = int(params.get("ways", 1))
    noise_rate = int(params.get("noise_rate", 64))
    cache = Cache(
        CacheConfig(
            n_slices=int(params.get("n_slices", 2)),
            sets_per_slice=int(params.get("sets_per_slice", 128)),
            ways=int(params.get("cache_ways", 4)),
            seed=seed,
        )
    )
    memory = AttackerMemory(cache, n_lines=1 << 15)
    probe = PrimeProbe(cache, memory, ways=ways)
    locations = memory.locations_with(ways)[:n_locations]
    noise = BackgroundNoise(cache, rate=noise_rate, seed=seed ^ 0x5EED)
    active_total = 0
    for _ in range(rounds):
        probe.prime(locations)
        noise.step()
        active_total += len(probe.probe(locations))
    stats = cache.stats
    return {
        "rounds": rounds,
        "locations": len(locations),
        "active_total": active_total,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "evictions": stats["evictions"],
    }


@register_experiment("mitigation_overhead")
def mitigation_overhead(params: dict, seed: int) -> dict:
    """Section VIII costing: the full attack against the vulnerable and
    the oblivious histogram, same secret, same knobs."""
    from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
    from repro.mitigations import oblivious_histogram
    from repro.workloads import random_bytes

    secret = random_bytes(int(params.get("size", 200)), seed=seed)
    noise = int(params.get("noise", 2))
    vulnerable = SgxBzip2Attack(
        secret, AttackConfig(background_noise_rate=noise)
    ).run()
    hardened = SgxBzip2Attack(
        secret,
        AttackConfig(background_noise_rate=noise),
        victim_histogram=oblivious_histogram,
    ).run()
    return {
        "vulnerable_byte_accuracy": vulnerable.byte_accuracy,
        "mitigated_byte_accuracy": hardened.byte_accuracy,
        "mitigated_bit_accuracy": hardened.bit_accuracy,
        "access_overhead": hardened.victim_accesses / vulnerable.victim_accesses,
    }


@register_experiment("mitigation_synthesis")
def mitigation_synthesis(params: dict, seed: int) -> dict:
    """The ``repro mitigate`` loop as a campaign experiment: scan the
    vulnerable kernel, synthesise the per-site plan, apply it, and
    re-meter.

    Params: ``target`` (zlib/lzw/bzip2, default lzw), ``size`` (input
    bytes, default 120), ``input_kind`` (default: the survey's
    per-target convention), ``hash_bits`` (mitigated LZW table size,
    default 12).  Returns the flat before/after leakage metrics plus
    plan shape, output-equality flags, and access overhead; native
    wall-clock goes under the volatile ``elapsed_seconds`` key so
    digest pinning ignores it.
    """
    from repro.mitigations.verify import verify_mitigation

    report = verify_mitigation(
        params.get("target", "lzw"),
        size=int(params.get("size", 120)),
        input_kind=params.get("input_kind"),
        seed=seed,
        hash_bits=int(params.get("hash_bits", 12)),
    )
    metrics = report.metric_dict()
    metrics["elapsed_seconds"] = dict(report.elapsed_seconds)
    return metrics


@register_experiment("gadget_leakage")
def gadget_leakage(params: dict, seed: int) -> dict:
    """Channel-quality diagnostics for one survey gadget.

    Params: ``target`` (``zlib``/``lzw``/``bzip2``), ``size`` (input
    bytes, default 120), ``input_kind`` (default: the survey's per-
    target convention).  With ``store`` (+ optional ``trace_id`` or
    ``sweep_seed``) the metering replays a stored trace instead of
    re-running the victim — metrics are bit-identical either way.
    Returns the flat leakage metrics (per-bit accuracy, empirical
    mutual information, bits per cache-line observation).
    """
    from repro.diag.leakage import (
        measure_gadget_from_store,
        measure_gadget_live,
    )

    target = params.get("target", "bzip2")
    size = int(params.get("size", 120))
    if "store" in params:
        from repro.traces import TraceStore

        sweep_seed = int(params.get("sweep_seed", seed))
        trace_id = params.get(
            "trace_id", f"survey-{target}-n{size}-s{sweep_seed}"
        )
        diag = measure_gadget_from_store(TraceStore(params["store"]), trace_id)
    else:
        diag = measure_gadget_live(
            target, size, seed, input_kind=params.get("input_kind")
        )
    return diag.metric_dict()


@register_experiment("channel_health")
def channel_health_experiment(params: dict, seed: int) -> dict:
    """The channel-health probe suite as a campaign experiment.

    Params: ``samples`` (timing draws, default 1500), ``n_targets``
    (eviction-set targets, default 4), ``step_n`` (single-step input
    bytes, default 32), ``noise_sigma`` (cache timer noise override).
    ``seed`` is unused — the probes pin their own seeds so results are
    comparable across campaign cells.
    """
    from repro.diag.channel import channel_health

    del seed
    noise_sigma = params.get("noise_sigma")
    health = channel_health(
        samples=int(params.get("samples", 1500)),
        n_targets=int(params.get("n_targets", 4)),
        step_n=int(params.get("step_n", 32)),
        noise_sigma=None if noise_sigma is None else float(noise_sigma),
    )
    return {
        "margin_sigma": health["timing"]["margin_sigma"],
        "empirical_separation": health["timing"]["empirical_separation"],
        "misclassified_rate": health["timing"]["misclassified_rate"],
        "eviction_minimal_fraction": health["eviction"]["minimal_fraction"],
        "eviction_congruent_fraction": health["eviction"]["congruent_fraction"],
        "eviction_mean_tests": health["eviction"]["mean_tests"],
        "single_step_fidelity": health["single_step"]["step_fidelity"],
        "single_step_page_accuracy": health["single_step"]["page_accuracy"],
    }


# -- compression-oracle scenarios (BREACH / memory compression) --------


def _oracle_setup(params: dict, seed: int):
    """Build the (victim, oracle) pair a scenario cell describes.

    Shared by the oracle experiments so a sweep cell and a standalone
    run with the same coordinates hit the identical configuration.
    """
    from repro.oracle import make_oracle, make_victim

    victim_name = params.get("victim", "http")
    observable = params.get("observable", "size")
    mitigation = params.get("mitigation", "none")
    victim_kwargs = {
        "seed": seed,
        "secret_len": int(params.get("secret_len", 8)),
        "charset": params.get("charset", "alnum_lower"),
    }
    if victim_name == "http" and "filler_bytes" in params:
        victim_kwargs["filler_bytes"] = int(params["filler_bytes"])
    victim = make_victim(victim_name, mitigation=mitigation, **victim_kwargs)
    oracle = make_oracle(
        victim,
        observable,
        mitigation,
        seed=seed,
        **dict(params.get("mitigation_params", {})),
    )
    return victim, oracle


@register_experiment("breach_recovery")
def breach_recovery(params: dict, seed: int) -> dict:
    """Iterative BREACH secret recovery through a sealed oracle.

    Params: ``victim`` (``http``/``memcomp``), ``observable``
    (``size``/``time``), ``mitigation`` (``none``/``padding``/
    ``quantize``/``jitter``/``debreach``), ``secret_len``, ``charset``,
    ``reps``, ``max_queries``, ``mitigation_params`` (dict forwarded to
    the mitigation), optional ``store`` to persist the probe trace.
    The recovered bytes are scored against the victim's ground truth
    but never returned — only the ``correct`` verdict and per-position
    confirmed fraction leave the worker.

    Viable cells: ``http`` leaks through both observables;
    ``memcomp`` leaks byte-wise only through ``size`` — on its *time*
    observable the per-byte copy-out saving is cancelled by the longer
    match search, so byte-granular recovery is below SNR and the
    ``memcomp_timing`` candidate distinguisher is the timing attack
    (exactly the split in the literature).
    """
    from repro.oracle import BreachAttack

    victim, oracle = _oracle_setup(params, seed)
    secret_len = len(victim.secret)
    # The memcomp page carries a multi-entry probe systematic that flips
    # the divide-and-conquer sign (singleton probes are clean), so it
    # defaults to the O(n) scan strategy like the timing oracle does.
    strategy = params.get(
        "strategy", "scan" if victim.name == "memcomp" else None
    )
    attack = BreachAttack(
        oracle,
        victim.known_prefix,
        reps=int(params.get("reps", 2)),
        seed=seed ^ 0xB4EA,
        max_queries=int(params.get("max_queries", 50_000)),
        strategy=strategy,
    )
    result = attack.run(secret_len, truth=victim.secret)
    if "store" in params:
        from repro.traces import TraceStore, capture_oracle_trace

        trace_id = params.get(
            "trace_id",
            f"breach-{victim.name}-{oracle.observable}-"
            f"{oracle.mitigation_name}-s{seed}",
        )
        capture_oracle_trace(
            TraceStore(params["store"]),
            trace_id,
            result.probes,
            victim=victim.name,
            observable=oracle.observable,
            mitigation=oracle.mitigation_name,
            seed=seed,
            overwrite=bool(params.get("overwrite", False)),
            extra_meta={"experiment": "breach_recovery"},
        )
    confirmed = sum(
        1 for a, b in zip(result.recovered, victim.secret) if a == b
    )
    return {
        "correct": bool(result.correct),
        "success": bool(result.success),
        "secret_len": secret_len,
        "recovered_len": len(result.recovered),
        "matching_fraction": confirmed / max(1, secret_len),
        "queries": result.queries,
        "queries_per_char": result.queries / max(1, secret_len),
        "probes": len(result.probes),
    }


@register_experiment("memcomp_timing")
def memcomp_timing(params: dict, seed: int) -> dict:
    """The memory-compression candidate distinguisher (KASLR/dedup shape).

    The secret is planted among ``n_candidates - 1`` decoy tokens at a
    seed-derived position; the attacker stores each candidate through
    the sealed oracle and picks the argmin.  Params: ``n_candidates``,
    ``secret_len``, ``charset``, ``reps``, ``observable`` (default
    ``time`` — the Schwarzl observable), ``mitigation``,
    ``mitigation_params``, optional ``store``.
    """
    import random as _random

    from repro.oracle import MemCompTimingDistinguisher
    from repro.workloads.generators import token_secret

    params = dict(params)
    params.setdefault("victim", "memcomp")
    params.setdefault("observable", "time")
    victim, oracle = _oracle_setup(params, seed)

    n_candidates = int(params.get("n_candidates", 12))
    charset = params.get("charset", "alnum_lower")
    secret_len = len(victim.secret)
    decoys = []
    i = 1
    while len(decoys) < n_candidates - 1:
        decoy = token_secret(secret_len, seed=seed * 1_009 + i, charset=charset)
        if decoy != victim.secret:
            decoys.append(decoy)
        i += 1
    true_index = _random.Random(seed ^ 0xDEC0).randrange(n_candidates)
    candidates = decoys[:true_index] + [victim.secret] + decoys[true_index:]

    distinguisher = MemCompTimingDistinguisher(
        oracle, reps=int(params.get("reps", 5))
    )
    result = distinguisher.run(candidates)
    if "store" in params:
        from repro.traces import TraceStore, capture_oracle_trace

        capture_oracle_trace(
            TraceStore(params["store"]),
            params.get(
                "trace_id",
                f"memcomp-{oracle.observable}-"
                f"{oracle.mitigation_name}-s{seed}",
            ),
            result.probes,
            victim=victim.name,
            observable=oracle.observable,
            mitigation=oracle.mitigation_name,
            seed=seed,
            overwrite=bool(params.get("overwrite", False)),
            extra_meta={"experiment": "memcomp_timing"},
        )
    return {
        "correct": bool(result.chosen_index == true_index),
        "n_candidates": n_candidates,
        "margin": result.margin,
        "queries": result.queries,
    }


@register_experiment("oracle_mitigation_sweep")
def oracle_mitigation_sweep(params: dict, seed: int) -> dict:
    """Recovery-rate-versus-overhead across mitigations and observables.

    For every (observable, mitigation) cell: one BREACH recovery run,
    the per-character oracle MI (same plug-in estimator as the drift
    gate), and the observation overhead relative to the unmitigated
    cell on fixed neutral queries.  Overhead is measured through the
    oracle rather than the mitigation transform because the Debreach
    guard lives victim-side (it changes the compressor, not the
    observable).

    Params: ``observables`` (default ``["size", "time"]``),
    ``mitigations`` (default ``["none", "padding", "quantize",
    "jitter", "debreach"]``), ``secret_len`` (default 6),
    ``max_queries`` per cell (default 4000), ``mi_samples`` (default
    24; 0 skips MI), ``reps``, plus the ``breach_recovery`` victim
    knobs.

    The matrix is deliberately diagonal: observable-shaping defenses
    close only the observable they shape (padding/quantize leave the
    *time* channel wide open — the TIME/HEIST lesson — and jitter
    leaves *size* open); only the compressor-level Debreach guard
    closes both.
    """
    from repro.diag.oracle import measure_oracle_channel
    from repro.oracle import make_oracle, make_victim

    observables = list(params.get("observables", ["size", "time"]))
    mitigations = list(
        params.get(
            "mitigations",
            ["none", "padding", "quantize", "jitter", "debreach"],
        )
    )
    secret_len = int(params.get("secret_len", 6))
    mi_samples = int(params.get("mi_samples", 24))
    neutral = [b"probe-%d" % i for i in range(8)]

    metrics: dict[str, float] = {}
    for observable in observables:
        # Unmitigated reference cost for this observable: same victim
        # seed, fresh oracle, fixed neutral queries.
        ref_victim = make_victim(
            "http", seed=seed, secret_len=secret_len
        )
        ref_oracle = make_oracle(ref_victim, observable, "none", seed=seed)
        ref_cost = sum(ref_oracle.observe(q) for q in neutral) / len(neutral)
        for mitigation in mitigations:
            cell = breach_recovery(
                {
                    **{
                        k: v
                        for k, v in params.items()
                        if k in ("charset", "reps", "mitigation_params",
                                 "filler_bytes")
                    },
                    "victim": "http",
                    "observable": observable,
                    "mitigation": mitigation,
                    "secret_len": secret_len,
                    "max_queries": int(params.get("max_queries", 4_000)),
                },
                seed,
            )
            victim = make_victim(
                "http", mitigation=mitigation, seed=seed,
                secret_len=secret_len,
            )
            oracle = make_oracle(victim, observable, mitigation, seed=seed)
            cost = sum(oracle.observe(q) for q in neutral) / len(neutral)
            key = f"{observable}.{mitigation}"
            metrics[f"{key}.correct"] = float(cell["correct"])
            metrics[f"{key}.matching_fraction"] = cell["matching_fraction"]
            metrics[f"{key}.queries"] = float(cell["queries"])
            metrics[f"{key}.overhead_pct"] = 100.0 * (cost / ref_cost - 1.0)
            if mi_samples > 0:
                diag = measure_oracle_channel(
                    observable=observable,
                    mitigation=mitigation,
                    n_samples=mi_samples,
                    seed=seed,
                )
                metrics[f"{key}.mi_bits"] = diag.mi_bits
                metrics[f"{key}.mi_capacity_bits"] = diag.capacity_bits
    return metrics
