"""Experiment-campaign engine: declarative sweeps, parallel execution,
persistent results.

Every figure in the reproduction is backed by a one-shot script; scaling
any of them — accuracy-vs-noise sweeps, many-trial confidence intervals
on the SGX attack, large fingerprint corpora — needs the same four
ingredients, which this package provides once:

1. :mod:`repro.campaign.spec` — a campaign is a parameter grid over a
   registered experiment, expanded into jobs with deterministic per-job
   seeds (same spec ⇒ same seeds, forever).
2. :mod:`repro.campaign.runner` — a fault-tolerant parallel runner on
   ``concurrent.futures``: per-job timeouts, bounded retries with
   backoff, and worker-crash recovery that records the failure and keeps
   the campaign going.
3. :mod:`repro.campaign.store` — one JSONL record per job plus a
   campaign manifest; append-only, so an interrupted campaign resumes by
   skipping jobs whose records already exist.
4. :mod:`repro.campaign.report` — per-cell means and confidence
   intervals rendered as EXPERIMENTS.md-style markdown tables.

The registered experiments live in :mod:`repro.campaign.experiments`;
the CLI front end is ``python -m repro campaign run|resume|report``.
:mod:`repro.campaign.dossier` folds the report, the ``diag.json``
timeseries, and the campaign's obs sinks into one markdown document
(``python -m repro report <campaign-dir>``).
"""

from repro.campaign.dossier import build_dossier, discover_sinks
from repro.campaign.experiments import (
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.campaign.report import (
    aggregate_records,
    campaign_status,
    render_report,
    render_status,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    InProcessExecutor,
    JobTimeout,
    WorkerCrash,
)
from repro.campaign.spec import CampaignSpec, JobSpec, derive_seed
from repro.campaign.store import (
    JobRecord,
    ResultStore,
    SpecMismatchError,
    dedupe_records,
    metrics_digest,
)

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "derive_seed",
    "CampaignRunner",
    "CampaignResult",
    "InProcessExecutor",
    "JobTimeout",
    "WorkerCrash",
    "ResultStore",
    "JobRecord",
    "SpecMismatchError",
    "dedupe_records",
    "metrics_digest",
    "aggregate_records",
    "build_dossier",
    "campaign_status",
    "discover_sinks",
    "render_report",
    "render_status",
    "register_experiment",
    "get_experiment",
    "available_experiments",
]
