"""Persistent campaign results: a manifest plus append-only JSONL.

Layout of one campaign directory::

    <root>/
      manifest.json    spec (verbatim), spec hash, git revision,
                       started/finished timestamps, outcome counts
      results.jsonl    one JSON record per finished job attempt chain

``results.jsonl`` is append-only and flushed per record, so a campaign
killed mid-run loses at most the job in flight; :meth:`ResultStore.load_records`
tolerates a torn final line.  Resume is then trivial: skip every job
whose id already has a record.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro import obs
from repro.campaign.spec import CampaignSpec, JobSpec

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
DIAG_NAME = "diag.json"
DIAG_TIMESERIES_SCHEMA = "repro-diag-timeseries/1"
SHARD_PREFIX = "shard-"

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"


class SpecMismatchError(ValueError):
    """A campaign directory holds a different spec than the one offered.

    Raised with both hashes in the message so ``campaign resume`` (and
    the cluster scheduler, which inherits the check) can tell the user
    exactly which two campaigns collided instead of surfacing the
    mismatch late as corrupt aggregates.
    """

    def __init__(self, root, stored_hash, offered_hash) -> None:
        self.stored_hash = stored_hash
        self.offered_hash = offered_hash
        super().__init__(
            f"{root} holds campaign spec_hash={stored_hash!r} but the "
            f"offered spec hashes to {offered_hash!r}; resume must use "
            f"the original spec — use a fresh directory for a new one"
        )


def git_revision(cwd: Optional[str] = None) -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


@dataclass
class JobRecord:
    """The persisted outcome of one job (after all its attempts)."""

    job_id: str
    experiment: str
    params: dict
    trial: int
    seed: int
    status: str  # one of the STATUS_* constants
    attempts: int
    duration_seconds: float
    metrics: Optional[dict] = None  # experiment output when status == ok
    error: Optional[str] = None  # last failure message otherwise
    finished_at: float = field(default_factory=time.time)
    # None: no budget requested / unknown; False: a wall-clock budget
    # was requested but the platform could not enforce it (no SIGALRM).
    timeout_enforced: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """Whether the job produced usable metrics."""
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        """JSON-ready form (one JSONL line)."""
        return {
            "job_id": self.job_id,
            "experiment": self.experiment,
            "params": self.params,
            "trial": self.trial,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "duration_seconds": self.duration_seconds,
            "metrics": self.metrics,
            "error": self.error,
            "finished_at": self.finished_at,
            "timeout_enforced": self.timeout_enforced,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            job_id=data["job_id"],
            experiment=data["experiment"],
            params=dict(data["params"]),
            trial=int(data["trial"]),
            seed=int(data["seed"]),
            status=data["status"],
            attempts=int(data["attempts"]),
            duration_seconds=float(data["duration_seconds"]),
            metrics=data.get("metrics"),
            error=data.get("error"),
            finished_at=float(data.get("finished_at", 0.0)),
            timeout_enforced=data.get("timeout_enforced"),
        )


class ResultStore:
    """One campaign directory: manifest + append-only result log."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.manifest_path = self.root / MANIFEST_NAME
        self.results_path = self.root / RESULTS_NAME

    # -- manifest -------------------------------------------------------
    def exists(self) -> bool:
        """Whether this directory already holds a campaign."""
        return self.manifest_path.exists()

    def open_campaign(self, spec: CampaignSpec, resume: bool = False) -> dict:
        """Create (or, with ``resume``, re-open) the campaign directory.

        Refuses to reuse a directory written by a *different* spec — a
        resumed campaign must be the same campaign, or its aggregates
        would silently mix incompatible jobs.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if self.exists():
            manifest = self.load_manifest()
            self.check_spec(spec, manifest)
            if not resume:
                raise FileExistsError(
                    f"{self.root} already holds this campaign; "
                    f"pass resume=True (CLI: `campaign resume`) to continue it"
                )
            manifest["resumed_at"] = time.time()
            manifest.pop("finished_at", None)
            self._write_manifest(manifest)
            return manifest
        manifest = {
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "n_jobs": spec.n_jobs(),
            "git_revision": git_revision(),
            "started_at": time.time(),
        }
        self._write_manifest(manifest)
        return manifest

    def load_manifest(self) -> dict:
        """Read the manifest (raises ``FileNotFoundError`` when absent)."""
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def check_spec(
        self, spec: CampaignSpec, manifest: Optional[dict] = None
    ) -> None:
        """Raise :class:`SpecMismatchError` unless ``spec`` is the
        campaign this directory already holds."""
        if manifest is None:
            manifest = self.load_manifest()
        stored = manifest.get("spec_hash")
        offered = spec.spec_hash()
        if stored != offered:
            raise SpecMismatchError(self.root, stored, offered)

    def load_spec(self) -> CampaignSpec:
        """Rehydrate the campaign's spec from the manifest — what lets
        ``campaign resume <dir>`` run without the original spec file.

        Verifies the manifest's recorded ``spec_hash`` still matches the
        stored spec, so a hand-edited manifest fails loudly here instead
        of resuming a silently different campaign.
        """
        manifest = self.load_manifest()
        spec = CampaignSpec.from_dict(manifest["spec"])
        stored = manifest.get("spec_hash")
        if stored != spec.spec_hash():
            raise SpecMismatchError(self.root, stored, spec.spec_hash())
        return spec

    def finalize(self, counts: dict) -> None:
        """Stamp completion time and outcome counts into the manifest,
        and aggregate the per-job metrics into the diag timeseries."""
        manifest = self.load_manifest()
        manifest["finished_at"] = time.time()
        manifest["outcomes"] = dict(counts)
        self._write_manifest(manifest)
        self.write_diag()

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.manifest_path)

    # -- results --------------------------------------------------------
    def append(self, record: JobRecord) -> None:
        """Append one finished job, durably (flush per line)."""
        observing = obs.enabled()
        start = time.perf_counter() if observing else 0.0
        with open(self.results_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        if observing:
            obs.observe("store.append_seconds", time.perf_counter() - start)
            obs.counter_add("store.appends")

    def load_records(self, include_shards: bool = False) -> dict[str, JobRecord]:
        """All persisted records, last write per job id winning.

        A torn final line (the process died mid-append) is skipped
        rather than poisoning the whole campaign.  With
        ``include_shards`` records still sitting in un-merged
        ``shard-*/`` sub-stores are folded in via
        :func:`dedupe_records` (ok beats non-ok, then more attempts).
        """
        records: dict[str, JobRecord] = {}
        if self.results_path.exists():
            with open(self.results_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = JobRecord.from_dict(json.loads(line))
                    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                        continue  # torn or foreign line
                    records[record.job_id] = record
        if include_shards:
            shard_records = list(records.values())
            for shard in self.shard_stores():
                shard_records.extend(shard.load_records().values())
            records = dedupe_records(shard_records)
        return records

    def completed_ids(self, include_shards: bool = False) -> set[str]:
        """Job ids that already have a record — what resume skips."""
        return set(self.load_records(include_shards=include_shards))

    # -- shards ---------------------------------------------------------
    def shard_store(self, worker_id: str) -> "ResultStore":
        """The per-worker sub-store ``<root>/shard-<worker_id>/``.

        Workers append only to their own shard, so the main
        ``results.jsonl`` never sees concurrent writers; the scheduler
        folds shards back in at :meth:`merge_shards` time.
        """
        return ResultStore(self.root / f"{SHARD_PREFIX}{worker_id}")

    def shard_stores(self) -> list["ResultStore"]:
        """Every shard sub-store present on disk, in sorted name order."""
        if not self.root.is_dir():
            return []
        return [
            ResultStore(path)
            for path in sorted(self.root.iterdir())
            if path.is_dir() and path.name.startswith(SHARD_PREFIX)
        ]

    def merge_shards(self) -> int:
        """Fold every ``shard-*/results.jsonl`` into the main log.

        Deduplicates with :func:`dedupe_records` (a stale worker
        completing an already-rescheduled job is idempotent), appends
        winners in sorted job-id order for a deterministic merged log,
        and returns how many records were (re)written.  Shard files are
        left in place as an audit trail; the main log wins on re-read.
        """
        shards = self.shard_stores()
        with obs.span("store.merge", store=str(self.root), shards=len(shards)):
            main = self.load_records()
            combined = list(main.values())
            for shard in shards:
                combined.extend(shard.load_records().values())
            merged = dedupe_records(combined)
            changed = [
                record
                for job_id, record in sorted(merged.items())
                if main.get(job_id) is not record
            ]
            for record in changed:
                self.append(record)
        if changed:
            obs.counter_add("store.shard_merged_records", len(changed))
        return len(changed)

    # -- diag timeseries ------------------------------------------------
    @property
    def diag_path(self) -> Path:
        return self.root / DIAG_NAME

    def write_diag(self) -> Optional[Path]:
        """Aggregate per-job numeric metrics into ``diag.json``.

        One point per recorded job in finish order, plus per-metric
        series and summary stats — the campaign-level view of the
        diagnostics that workers also streamed through the obs sink.
        Returns the written path, or None when there are no records.
        """
        records = sorted(
            self.load_records().values(), key=lambda r: (r.finished_at, r.job_id)
        )
        if not records:
            return None
        points: list[dict] = []
        series: dict[str, list[float]] = {}
        for record in records:
            values = {
                key: float(int(v) if isinstance(v, bool) else v)
                for key, v in (record.metrics or {}).items()
                if isinstance(v, (int, float))
            }
            values["duration_seconds"] = float(record.duration_seconds)
            points.append(
                {
                    "job_id": record.job_id,
                    "finished_at": record.finished_at,
                    "status": record.status,
                    "trial": record.trial,
                    "metrics": values,
                }
            )
            if record.ok:
                for key, value in values.items():
                    series.setdefault(key, []).append(value)
        summary = {
            key: {
                "n": len(vs),
                "mean": sum(vs) / len(vs),
                "min": min(vs),
                "max": max(vs),
                "last": vs[-1],
            }
            for key, vs in sorted(series.items())
        }
        payload = {
            "schema": DIAG_TIMESERIES_SCHEMA,
            "n_points": len(points),
            "points": points,
            "series": dict(sorted(series.items())),
            "summary": summary,
        }
        tmp = self.diag_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.diag_path)
        return self.diag_path

    def load_diag(self) -> dict:
        """Read ``diag.json`` (raises ``FileNotFoundError`` when the
        campaign has not finalized yet)."""
        with open(self.diag_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def pending_jobs(self, spec: CampaignSpec) -> list[JobSpec]:
        """The spec's jobs that have no record yet, in expansion order."""
        done = self.completed_ids()
        return [job for job in spec.jobs() if job.job_id not in done]


# -- pure record algebra (shared by store, scheduler, and tests) --------
def _dedupe_rank(record: JobRecord) -> tuple:
    """Total order over duplicate records for one job id.

    The max under this key wins.  Preference: a successful record beats
    any failure (a stale worker's late ``ok`` for a job the scheduler
    already wrote off as crashed is the *better* record); then more
    attempts (the later chain subsumes the earlier); the canonical JSON
    tail makes the order total so dedupe is independent of input order.
    """
    return (
        1 if record.status == STATUS_OK else 0,
        record.attempts,
        record.finished_at,
        json.dumps(record.to_dict(), sort_keys=True),
    )


def dedupe_records(records) -> dict[str, JobRecord]:
    """Collapse an iterable of records to one winner per job id.

    Order-independent: any permutation of ``records`` yields the same
    mapping (pinned by a Hypothesis test), which is what makes duplicate
    completions and shard merges idempotent.
    """
    winners: dict[str, JobRecord] = {}
    for record in records:
        held = winners.get(record.job_id)
        if held is None or _dedupe_rank(record) > _dedupe_rank(held):
            winners[record.job_id] = record
    return winners


DIGEST_FIELDS = ("job_id", "experiment", "params", "trial", "seed", "status", "metrics")


def metrics_digest(records) -> str:
    """Deterministic sha256 over the *reproducible* part of a record set.

    Covers ``job_id, experiment, params, trial, seed, status, metrics``
    and deliberately excludes the wall-clock fields (``attempts``,
    ``duration_seconds``, ``finished_at``, ``timeout_enforced``,
    ``error``): metrics are a pure function of (experiment, params,
    seed), so the same spec must digest identically whether it ran on
    the local pool, one worker, or N workers with a mid-run crash.
    """
    if isinstance(records, dict):
        records = records.values()
    rows = sorted(
        (
            {field: getattr(record, field) for field in DIGEST_FIELDS}
            for record in records
        ),
        key=lambda row: row["job_id"],
    )
    payload = json.dumps(rows, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
