"""One campaign, one document: the ``repro report`` dossier.

A finished campaign leaves several artefacts on disk — the manifest and
JSONL result log, the ``diag.json`` metrics timeseries, and (when run
with observability on) one or more obs sinks holding counters,
histograms, warnings and the cross-process span tree.  Each has its own
viewer (``campaign report``, ``obs watch``, ``obs report --trace``);
:func:`build_dossier` merges all of them into one static markdown
document, so "what happened in this campaign" is a single file you can
commit, attach to a CI run, or diff against a previous campaign.

Sections, in order:

1. the campaign report proper (identity, outcome counts, per-cell
   results, failed jobs) — verbatim from
   :func:`repro.campaign.report.render_report`;
2. the ``diag.json`` per-metric timeseries, one row per metric with
   summary stats and a unicode sparkline of the per-job series;
3. the obs sink summary — merged counters, histogram tails, and
   deduplicated warnings;
4. the trace view — the stitched span tree and critical-path
   breakdown from :func:`repro.obs.report.render_trace`, fenced as
   preformatted text.

Sinks are auto-discovered under the campaign directory
(:func:`discover_sinks`: ``obs.jsonl`` beside the manifest plus
per-worker ``shard-*/obs.jsonl``, rotated generations included) or can
be passed explicitly for sinks that live elsewhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.campaign.report import render_report
from repro.campaign.store import ResultStore


def discover_sinks(root) -> list[str]:
    """The obs sinks a campaign run conventionally leaves in its store:
    ``<root>/obs.jsonl`` plus per-worker ``shard-*/obs.jsonl``.
    Rotated ``.1`` generations ride along via ``expand_sinks``."""
    from repro.obs.report import expand_sinks

    root = Path(root)
    candidates = [
        str(root / "obs.jsonl"),
        str(root / "shard-*" / "obs.jsonl"),
    ]
    return [p for p in expand_sinks(candidates) if Path(p).exists()]


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.4g}"


def _diag_lines(diag: dict) -> list[str]:
    from repro.obs.watch import sparkline

    summary = diag.get("summary") or {}
    series = diag.get("series") or {}
    n_points = diag.get("n_points", 0)
    if not summary:
        return ["(no successful jobs — no metric series to plot)"]
    lines = [
        f"{n_points} job points, {len(summary)} metric series.",
        "",
        "| metric | n | mean | min | max | last | trend |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, stats in sorted(summary.items()):
        values = [float(v) for v in series.get(name, [])]
        spark = sparkline(values) if values else ""
        lines.append(
            f"| {name} | {stats['n']} | {_num(stats['mean'])} "
            f"| {_num(stats['min'])} | {_num(stats['max'])} "
            f"| {_num(stats['last'])} | `{spark}` |"
        )
    return lines


def _obs_lines(merged: dict) -> list[str]:
    lines = [
        f"{merged['n_events']} events merged "
        f"({merged['n_logs']} log lines)."
    ]
    if merged["counters"]:
        lines += [
            "",
            "| counter | value |",
            "|---|---|",
        ]
        for name, value in merged["counters"].items():
            lines.append(f"| {name} | {_num(float(value))} |")
    if merged["histograms"]:
        lines += [
            "",
            "| histogram | count | mean | p95 | max | total |",
            "|---|---|---|---|---|---|",
        ]
        for name, h in merged["histograms"].items():
            p95 = h.get("p95")
            lines.append(
                f"| {name} | {h['count']} | {h['mean']:.6g} "
                f"| {p95:.6g} | {h['max']:.6g} | {h['total']:.6g} |"
                if p95 is not None and h.get("max") is not None
                else f"| {name} | {h['count']} | {h['mean']:.6g} "
                f"| — | — | {h['total']:.6g} |"
            )
    if merged["warnings"]:
        lines += ["", "Warnings (deduplicated):", ""]
        for row in merged["warnings"]:
            pids = len(row["pids"])
            lines.append(
                f"- `{row['msg']}` — {row['count']}× across "
                f"{pids} pid{'s' if pids != 1 else ''}"
            )
    return lines


def build_dossier(
    store: ResultStore, sinks: Optional[Sequence[str]] = None
) -> str:
    """The full markdown dossier for one campaign directory.

    Degrades gracefully: a campaign without ``diag.json`` gets it
    derived on the fly (when records exist), and one run without
    observability simply notes the missing sinks — every section that
    *can* be produced is.
    """
    lines = [render_report(store).rstrip()]

    try:
        diag = store.load_diag()
    except FileNotFoundError:
        diag = None
        try:
            if store.write_diag() is not None:
                diag = store.load_diag()
        except OSError:
            diag = None
    lines += ["", "## Diagnostics timeseries", ""]
    if diag is None:
        lines.append("(no diag.json and no records to derive one from)")
    else:
        lines += _diag_lines(diag)

    if sinks is None:
        sinks = discover_sinks(store.root)
    events: list[dict] = []
    if sinks:
        from repro.obs.report import load_events_multi

        try:
            events = load_events_multi(list(sinks))
        except (FileNotFoundError, OSError):
            events = []
    lines += ["", "## Observability", ""]
    if not events:
        lines.append(
            "(no obs sinks under the campaign directory — run with "
            "`--obs`/`--obs-shards` to collect one)"
        )
    else:
        from repro.obs.report import merge_events, render_trace

        sink_list = ", ".join(f"`{s}`" for s in sinks)
        lines.append(f"Sinks: {sink_list}")
        lines.append("")
        lines += _obs_lines(merge_events(events))
        lines += ["", "## Trace", "", "```"]
        lines.append(render_trace(events))
        lines.append("```")
    lines.append("")
    return "\n".join(lines)
