"""The scheduler's work-stealing lease queue.

Jobs sit in a pending list until any worker asks for work (that *is*
the work stealing: there is no per-worker assignment, the next free
worker takes the next eligible job).  A leased job is invisible to
other workers until its lease expires or its worker disconnects; then
it is charged one attempt — exactly the accounting the single-host
runner applies when a broken pool takes in-flight jobs with it — and
either requeued with the runner's exponential backoff or declared
terminally crashed.

The clock is injected so every lease-expiry path is unit-testable
without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.campaign.spec import JobSpec


@dataclass
class QueuedJob:
    """One job's place in the retry state machine."""

    job: JobSpec
    position: int  # index in spec expansion order (fault-injection anchor)
    attempt: int = 0  # 0-based, same convention as the runner
    eligible_at: float = 0.0  # clock time before which it is held back
    # Clock time the job (re-)became eligible to run: submission time
    # initially, the end of the backoff hold after a retry.  Lease time
    # minus this is the enqueue→lease wait the scheduler feeds into the
    # ``cluster.lease_wait_seconds`` histogram — deliberately excluding
    # deliberate backoff delay, which is accounted separately.
    enqueued_at: float = 0.0


@dataclass
class Lease:
    """A job checked out to one worker, with an expiry."""

    queued: QueuedJob
    worker_id: str
    lease_id: str
    issued_at: float
    expires_at: float


@dataclass
class LeaseQueue:
    """Pending + leased + done bookkeeping for one campaign.

    Args:
        jobs: pending jobs in deterministic (expansion) order.
        max_retries: attempts beyond the first before a job is terminal.
        retry_backoff: base of the runner-compatible exponential backoff
            (``delay = retry_backoff * 2**attempt``).
        lease_seconds: how long a lease lives between heartbeats.
        clock: monotonic time source (injected in tests).
    """

    jobs: list
    max_retries: int = 0
    retry_backoff: float = 0.0
    lease_seconds: float = 30.0
    clock: Callable[[], float] = time.monotonic
    _pending: list = field(init=False)
    _leases: dict = field(init=False, default_factory=dict)  # job_id -> Lease
    _done: set = field(init=False, default_factory=set)
    _lease_seq: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._pending = list(self.jobs)

    # -- introspection --------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def leased_count(self) -> int:
        return len(self._leases)

    @property
    def done_count(self) -> int:
        return len(self._done)

    def drained(self) -> bool:
        """Every job accounted for — nothing pending, nothing leased."""
        return not self._pending and not self._leases

    def next_eligible_in(self) -> Optional[float]:
        """Seconds until the soonest backoff hold expires (``None``
        when nothing is pending; ``0`` when work is ready now)."""
        if not self._pending:
            return None
        now = self.clock()
        return max(0.0, min(q.eligible_at for q in self._pending) - now)

    def is_final_attempt(self, queued: QueuedJob) -> bool:
        """Whether a failure of this attempt is terminal (retries
        exhausted) — the worker uses this to decide record writing."""
        return queued.attempt >= self.max_retries

    # -- the lease lifecycle --------------------------------------------
    def lease(self, worker_id: str) -> Optional[Lease]:
        """Check the next eligible pending job out to ``worker_id``."""
        now = self.clock()
        index = next(
            (i for i, q in enumerate(self._pending) if q.eligible_at <= now),
            None,
        )
        if index is None:
            return None
        queued = self._pending.pop(index)
        self._lease_seq += 1
        lease = Lease(
            queued=queued,
            worker_id=worker_id,
            lease_id=f"{queued.job.job_id}.{self._lease_seq}",
            issued_at=now,
            expires_at=now + self.lease_seconds,
        )
        self._leases[queued.job.job_id] = lease
        return lease

    def heartbeat(self, worker_id: str) -> int:
        """Extend every lease this worker holds; returns how many."""
        now = self.clock()
        extended = 0
        for lease in self._leases.values():
            if lease.worker_id == worker_id:
                lease.expires_at = now + self.lease_seconds
                extended += 1
        return extended

    def resolve(self, job_id: str, worker_id: str) -> Optional[QueuedJob]:
        """Claim the lease back on a result from ``worker_id``.

        Returns the queued job when the lease is live and held by this
        worker, else ``None`` — a *stale* completion (the job was
        already rescheduled or finished elsewhere), which callers must
        treat as a no-op so duplicate completions stay idempotent.
        """
        lease = self._leases.get(job_id)
        if lease is None or lease.worker_id != worker_id:
            return None
        del self._leases[job_id]
        return lease.queued

    def mark_done(self, job_id: str) -> None:
        """Record a terminal outcome (ok or exhausted failure)."""
        self._done.add(job_id)

    def retry(self, queued: QueuedJob) -> float:
        """Requeue a failed attempt with the runner's backoff; returns
        the applied delay.  Caller must have checked
        :meth:`is_final_attempt` first."""
        delay = self.retry_backoff * (2**queued.attempt)
        queued.attempt += 1
        queued.eligible_at = self.clock() + delay
        queued.enqueued_at = queued.eligible_at
        self._pending.append(queued)
        return delay

    def expire(self) -> list[Lease]:
        """Remove and return every lease past its expiry (dead worker
        suspected).  The caller charges each one attempt."""
        now = self.clock()
        expired = [
            lease for lease in self._leases.values() if lease.expires_at <= now
        ]
        for lease in expired:
            del self._leases[lease.queued.job.job_id]
        return expired

    def clear_pending(self) -> int:
        """Drop every pending job (campaign cancellation); returns how
        many were dropped.  Live leases are left to expire or resolve."""
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    def release_worker(self, worker_id: str) -> list[Lease]:
        """Remove and return every lease a (disconnected) worker held.

        Faster than waiting for expiry: a closed connection is proof of
        death, so the jobs go back immediately."""
        released = [
            lease
            for lease in self._leases.values()
            if lease.worker_id == worker_id
        ]
        for lease in released:
            del self._leases[lease.queued.job.job_id]
        return released
