"""The cluster wire protocol: JSON lines over TCP or a Unix socket.

One message per line, each a JSON object with a ``type`` field.  The
worker side is strictly request/response for flow control — a worker
sends ``lease`` and reads exactly one of ``job`` / ``idle`` / ``drain``
back — while ``heartbeat``, ``result`` and ``goodbye`` are one-way
(the scheduler never replies to them, so a single reader loop on each
side suffices and messages can never interleave).

Worker → scheduler::

    register   {worker_id, pid, protocol}
    lease      {worker_id}                     -> job | idle | drain
    heartbeat  {worker_id}                     (one-way)
    result     {worker_id, campaign_id, lease_id, job_id, status,
                duration, metrics?, error?, timeout_enforced?,
                trace?}                        (one-way)
    goodbye    {worker_id}                     (one-way, then close)

Scheduler → worker::

    registered {heartbeat_seconds, lease_seconds}
    job        {campaign_id, lease_id, job_id, payload, final,
                store_root, trial, trace?}
    idle       {retry_after}
    drain      {}

The optional ``trace`` field is the campaign's observability trace
context, ``{trace: <trace_id>, parent: <scheduler campaign span id>}``
(:func:`repro.obs.tracectx.wire_context`).  A worker adopts it for the
duration of the leased job — so the job's spans join the scheduler's
span tree — and echoes it verbatim on the ``result``.  It is absent
when the scheduler runs without observability, keeping those messages
byte-identical to protocol version 1 without it.

Control client → scheduler (the ``repro cluster submit|status|cancel``
commands use the same stream)::

    submit     {spec, store, resume}           -> ok {campaign_id} | error
    status     {}                              -> status {…}
    cancel     {campaign_id}                   -> ok | error
    shutdown   {}                              -> ok

Determinism note: nothing on the wire feeds the job's metrics — the
``payload`` carries the same ``(experiment, params, seed)`` triple the
single-host runner builds, so transport cannot perturb results.
"""

from __future__ import annotations

import json
import socket
import threading
from dataclasses import dataclass
from typing import Optional

PROTOCOL_VERSION = 1

# A line larger than this is a protocol violation, not a big job — the
# largest legitimate message is a result with a metrics dict.
MAX_LINE_BYTES = 4 * 1024 * 1024

# worker -> scheduler
MSG_REGISTER = "register"
MSG_LEASE = "lease"
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT = "result"
MSG_GOODBYE = "goodbye"
# scheduler -> worker
MSG_REGISTERED = "registered"
MSG_JOB = "job"
MSG_IDLE = "idle"
MSG_DRAIN = "drain"
# control plane
MSG_SUBMIT = "submit"
MSG_STATUS = "status"
MSG_CANCEL = "cancel"
MSG_SHUTDOWN = "shutdown"
MSG_OK = "ok"
MSG_ERROR = "error"


class ProtocolError(Exception):
    """A malformed, oversized, or out-of-order protocol message."""


def encode_message(message: dict) -> bytes:
    """One JSON line, ready for the socket."""
    if "type" not in message:
        raise ProtocolError("message has no 'type'")
    data = json.dumps(message, sort_keys=True, separators=(",", ":"))
    line = data.encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    return line


def decode_message(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("protocol line is not an object with a 'type'")
    return message


@dataclass(frozen=True)
class Endpoint:
    """Where the scheduler listens: ``tcp`` host/port or a Unix socket.

    Spelled ``unix:/path/to.sock``, ``tcp:host:port``, or bare
    ``host:port`` (tcp).  Unix sockets are the default transport for
    same-host fleets — no port allocation, file permissions for free.
    """

    kind: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    def connect(self, timeout: Optional[float] = 30.0) -> socket.socket:
        """Open a client socket to this endpoint."""
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        sock.settimeout(None)
        return sock


def parse_endpoint(text: str) -> Endpoint:
    """Parse an endpoint string (see :class:`Endpoint` for spellings)."""
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path in {text!r}")
        return Endpoint(kind="unix", path=path)
    if text.startswith("tcp:"):
        text = text[len("tcp:"):]
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"cannot parse endpoint {text!r}; expected unix:/path, "
            f"tcp:host:port, or host:port"
        )
    try:
        port_num = int(port)
    except ValueError as exc:
        raise ValueError(f"bad port in endpoint {text!r}") from exc
    return Endpoint(kind="tcp", host=host, port=port_num)


class MessageStream:
    """Blocking message framing over one socket.

    ``send`` is serialized with a lock so the worker's heartbeat thread
    and its main loop can share the connection; ``recv`` has a single
    caller by protocol design (see module docstring).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()

    def send(self, message: dict) -> None:
        """Write one message (thread-safe)."""
        data = encode_message(message)
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[dict]:
        """Read one message; ``None`` on a clean EOF."""
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            return None
        return decode_message(line.rstrip(b"\n"))

    def close(self) -> None:
        """Tear the connection down, quietly."""
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass
