"""Distributed campaign execution: scheduler, worker protocol, service.

The package splits the single-host campaign runner along its natural
seam.  The **scheduler** (:mod:`repro.cluster.scheduler`) owns job
expansion, a work-stealing lease queue with heartbeat-backed crash
recovery (:mod:`repro.cluster.queue`), retry accounting, and the
shard-merge finalize; **workers** (:mod:`repro.cluster.worker`) own
execution via the shared :mod:`repro.campaign.executor` core and write
their records to per-worker ``shard-<id>/`` sub-stores.  The two talk
a JSON-lines protocol over TCP or a Unix socket
(:mod:`repro.cluster.protocol`), served by the asyncio shell in
:mod:`repro.cluster.service` — one-shot (``repro cluster run``) or as
a long-lived campaign service (``repro cluster serve`` +
``submit``/``status``/``cancel``).

The determinism contract carries over unchanged: job metrics are a
pure function of ``(experiment, params, seed)``, so the same spec
digests identically (:func:`repro.campaign.store.metrics_digest`)
whether it ran on the local pool, one worker, or N workers with a
mid-run crash.  See ``docs/cluster.md``.
"""

from repro.cluster.protocol import (
    Endpoint,
    MessageStream,
    ProtocolError,
    parse_endpoint,
)
from repro.cluster.queue import Lease, LeaseQueue, QueuedJob
from repro.cluster.scheduler import (
    CampaignExec,
    ClusterScheduler,
    WorkerInfo,
)
from repro.cluster.service import (
    SchedulerServer,
    control_request,
    run_cluster,
    serve,
    spawn_worker,
)
from repro.cluster.worker import ClusterWorker, default_worker_id

__all__ = [
    "Endpoint",
    "MessageStream",
    "ProtocolError",
    "parse_endpoint",
    "Lease",
    "LeaseQueue",
    "QueuedJob",
    "CampaignExec",
    "ClusterScheduler",
    "WorkerInfo",
    "SchedulerServer",
    "control_request",
    "run_cluster",
    "serve",
    "spawn_worker",
    "ClusterWorker",
    "default_worker_id",
]
