"""Transport and process management around the scheduler core.

Three entry points, all thin shells over
:class:`repro.cluster.scheduler.ClusterScheduler`:

- :class:`SchedulerServer` — an asyncio JSON-lines server speaking
  :mod:`repro.cluster.protocol` on TCP or a Unix socket, with a reaper
  task driving ``scheduler.tick()`` (lease expiry, finalize).
- :func:`run_cluster` — the one-shot ``repro cluster run`` front end:
  submit one campaign, spawn N local worker subprocesses, serve until
  drained, reap the workers.  ``drill_kill_worker`` SIGKILLs the first
  worker after N results land — the crash-recovery drill the CI smoke
  and the integration tests run.
- :func:`control_request` — the synchronous client the
  ``submit``/``status``/``cancel``/``shutdown`` commands use.

Service mode (``repro cluster serve``) is the same server with
``serve_forever=True``: idle workers are parked instead of drained, so
campaigns submitted later drain through the already-connected fleet.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from typing import Callable, Optional

from repro import obs
from repro.campaign.spec import CampaignSpec
from repro.cluster import protocol
from repro.cluster.protocol import Endpoint, MessageStream, ProtocolError
from repro.cluster.scheduler import ClusterScheduler


class SchedulerServer:
    """Asyncio transport for one :class:`ClusterScheduler`.

    Args:
        scheduler: the synchronous scheduler core.
        endpoint: where to listen; for TCP, port ``0`` picks an
            ephemeral port (read the bound one from ``self.endpoint``
            after :meth:`start`).
        serve_forever: service mode — park idle workers instead of
            draining them when no campaign is active.
        tick_interval: reaper cadence (lease expiry, finalize).
    """

    def __init__(
        self,
        scheduler: ClusterScheduler,
        endpoint: Endpoint,
        serve_forever: bool = False,
        tick_interval: float = 0.1,
    ) -> None:
        self.scheduler = scheduler
        self.endpoint = endpoint
        self.serve_forever = serve_forever
        self.tick_interval = tick_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind, listen, and start the reaper."""
        if self.endpoint.kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.endpoint.path,
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.endpoint.host or "127.0.0.1",
                port=self.endpoint.port, limit=protocol.MAX_LINE_BYTES,
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self.endpoint = Endpoint(kind="tcp", host=host, port=port)
        self._reaper = asyncio.ensure_future(self._reap_loop())
        obs.log("info", "cluster scheduler listening", endpoint=str(self.endpoint))

    async def stop(self) -> None:
        """Stop accepting, cancel the reaper, drop the socket file."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.endpoint.kind == "unix":
            try:
                os.unlink(self.endpoint.path)
            except OSError:
                pass

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` control message arrives and every
        campaign has finished draining."""
        while not (self._shutdown.is_set() and not self.scheduler.active()):
            await asyncio.sleep(self.tick_interval)

    async def _reap_loop(self) -> None:
        while True:
            self.scheduler.tick()
            await asyncio.sleep(self.tick_interval)

    # -- connection handling --------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(protocol.encode_message(message))
        await writer.drain()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker_id: Optional[str] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = protocol.decode_message(line.rstrip(b"\n"))
                kind = message["type"]
                if kind == protocol.MSG_REGISTER:
                    worker_id = str(message["worker_id"])
                    body = self.scheduler.register_worker(
                        worker_id, pid=int(message.get("pid", 0))
                    )
                    await self._send(
                        writer, {"type": protocol.MSG_REGISTERED, **body}
                    )
                elif kind == protocol.MSG_LEASE:
                    await self._handle_lease(writer, message)
                elif kind == protocol.MSG_HEARTBEAT:
                    self.scheduler.heartbeat(str(message["worker_id"]))
                elif kind == protocol.MSG_RESULT:
                    self.scheduler.handle_result(
                        str(message["worker_id"]), message
                    )
                elif kind == protocol.MSG_GOODBYE:
                    break
                elif kind == protocol.MSG_SUBMIT:
                    await self._handle_submit(writer, message)
                elif kind == protocol.MSG_STATUS:
                    await self._send(
                        writer,
                        {
                            "type": protocol.MSG_STATUS,
                            **self.scheduler.status_payload(),
                        },
                    )
                elif kind == protocol.MSG_CANCEL:
                    ok = self.scheduler.cancel(
                        str(message.get("campaign_id", ""))
                    )
                    await self._send(
                        writer,
                        {"type": protocol.MSG_OK}
                        if ok
                        else {
                            "type": protocol.MSG_ERROR,
                            "error": (
                                f"no running campaign "
                                f"{message.get('campaign_id')!r}"
                            ),
                        },
                    )
                elif kind == protocol.MSG_SHUTDOWN:
                    self._shutdown.set()
                    await self._send(writer, {"type": protocol.MSG_OK})
                else:
                    raise ProtocolError(f"unknown message type {kind!r}")
        except (
            ProtocolError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            if worker_id is not None:
                # EOF from a registered worker: clean goodbye or death,
                # either way its leases must not stay checked out.
                self.scheduler.disconnect_worker(worker_id)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    async def _handle_lease(
        self, writer: asyncio.StreamWriter, message: dict
    ) -> None:
        worker_id = str(message["worker_id"])
        job = self.scheduler.request_lease(worker_id)
        if job is not None:
            await self._send(writer, {"type": protocol.MSG_JOB, **job})
            return
        draining = self._shutdown.is_set() or (
            not self.serve_forever and not self.scheduler.active()
        )
        if draining and not self.scheduler.active():
            await self._send(writer, {"type": protocol.MSG_DRAIN})
            return
        await self._send(
            writer,
            {
                "type": protocol.MSG_IDLE,
                "retry_after": self.scheduler.idle_retry_after(),
            },
        )

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, message: dict
    ) -> None:
        try:
            spec = CampaignSpec.from_dict(message["spec"])
            campaign_id = self.scheduler.submit(
                spec,
                message["store"],
                resume=bool(message.get("resume", False)),
            )
        except (KeyError, TypeError, ValueError, OSError) as exc:
            await self._send(
                writer,
                {
                    "type": protocol.MSG_ERROR,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        await self._send(
            writer, {"type": protocol.MSG_OK, "campaign_id": campaign_id}
        )


# -- synchronous control client -----------------------------------------
def control_request(
    endpoint: Endpoint, message: dict, timeout: float = 30.0
) -> dict:
    """One request/response exchange with a running scheduler."""
    sock = endpoint.connect(timeout=timeout)
    sock.settimeout(timeout)
    stream = MessageStream(sock)
    try:
        stream.send(message)
        reply = stream.recv()
    finally:
        stream.close()
    if reply is None:
        raise ProtocolError("scheduler closed the connection without a reply")
    return reply


# -- one-shot local cluster run -----------------------------------------
def spawn_worker(
    endpoint: Endpoint,
    worker_id: str,
    obs_sink: Optional[str] = None,
) -> subprocess.Popen:
    """Start one ``repro cluster worker`` subprocess."""
    env = dict(os.environ)
    if obs_sink is not None:
        env[obs.ENV_SINK] = obs_sink
    else:
        env.pop(obs.ENV_SINK, None)
    # Cluster workers adopt trace context per-lease from the job
    # message, never from the environment — an inherited process-level
    # trace would misattribute a parked worker's idle time to whatever
    # campaign the parent process happened to be tracing.
    env.pop(obs.ENV_TRACE, None)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "worker",
            "--connect",
            str(endpoint),
            "--worker-id",
            worker_id,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_cluster(
    spec: CampaignSpec,
    store_root,
    workers: int = 2,
    endpoint: Optional[Endpoint] = None,
    resume: bool = False,
    lease_seconds: float = 30.0,
    heartbeat_seconds: float = 1.0,
    obs_shards: bool = False,
    obs_sink: Optional[str] = None,
    drill_kill_worker: Optional[int] = None,
    on_event: Optional[Callable[[str], None]] = None,
    deadline_seconds: float = 600.0,
) -> dict:
    """Run one campaign on a local fleet of worker subprocesses.

    Blocks until the campaign finalizes (or the deadline passes),
    reaps the workers, and returns the outcome counts.

    ``drill_kill_worker=N`` SIGKILLs the first worker after N jobs have
    completed — the lease/disconnect recovery drill.  ``obs_shards``
    points each worker's obs sink at
    ``<store>/shard-<worker_id>/obs.jsonl``; ``obs_sink`` instead gives
    every worker the *same* sink path (one merged JSONL file — fine for
    smoke-scale fleets, where one-line appends don't interleave), which
    together with the scheduler writing to the same file yields a
    single self-contained sink whose span tree ``obs report --trace``
    can stitch with no extra globbing.
    """
    scheduler = ClusterScheduler(
        lease_seconds=lease_seconds,
        heartbeat_seconds=heartbeat_seconds,
        on_event=on_event,
    )
    campaign_id = scheduler.submit(spec, store_root, resume=resume)

    async def _drive() -> dict:
        server = SchedulerServer(
            scheduler,
            endpoint or Endpoint(kind="tcp", host="127.0.0.1", port=0),
        )
        await server.start()
        procs: list[subprocess.Popen] = []
        try:
            for index in range(max(1, workers)):
                worker_id = f"w{index}"
                sink = obs_sink
                if obs_shards:
                    shard_root = (
                        scheduler.campaigns[campaign_id]
                        .store.shard_store(worker_id)
                        .root
                    )
                    shard_root.mkdir(parents=True, exist_ok=True)
                    sink = str(shard_root / "obs.jsonl")
                procs.append(
                    spawn_worker(server.endpoint, worker_id, obs_sink=sink)
                )
            deadline = time.monotonic() + deadline_seconds
            killed_drill = False
            exec_ = scheduler.campaigns[campaign_id]
            while scheduler.active():
                if (
                    drill_kill_worker is not None
                    and not killed_drill
                    and exec_.queue.done_count >= drill_kill_worker
                    and procs[0].poll() is None
                ):
                    procs[0].kill()
                    killed_drill = True
                    obs.counter_add("cluster.drill_kills")
                    if on_event is not None:
                        on_event(
                            f"drill: SIGKILLed worker w0 after "
                            f"{exec_.queue.done_count} results"
                        )
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"cluster run exceeded {deadline_seconds}s deadline"
                    )
                await asyncio.sleep(0.05)
            # Campaign finalized; let workers see the drain reply.
            drain_deadline = time.monotonic() + 10.0
            while any(p.poll() is None for p in procs):
                if time.monotonic() > drain_deadline:
                    break
                await asyncio.sleep(0.05)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            await server.stop()
        exec_ = scheduler.campaigns[campaign_id]
        counts = dict(exec_.counts)
        counts["skipped"] = exec_.skipped
        return {
            "campaign_id": campaign_id,
            "state": exec_.state,
            "counts": counts,
            "retries": exec_.retries,
            "elapsed_seconds": (
                (exec_.finished_at or scheduler.clock()) - exec_.started_at
            ),
            "store": str(exec_.store.root),
        }

    return asyncio.run(_drive())


def serve(
    endpoint: Endpoint,
    lease_seconds: float = 30.0,
    heartbeat_seconds: float = 5.0,
    on_event: Optional[Callable[[str], None]] = None,
) -> None:
    """Run the scheduler as a long-lived service (``cluster serve``).

    Campaigns arrive via ``cluster submit``; a ``shutdown`` control
    message stops the loop once every campaign has drained.  SIGTERM
    and SIGINT trigger the same graceful path.
    """
    scheduler = ClusterScheduler(
        lease_seconds=lease_seconds,
        heartbeat_seconds=heartbeat_seconds,
        on_event=on_event,
    )

    async def _serve() -> None:
        server = SchedulerServer(scheduler, endpoint, serve_forever=True)
        await server.start()
        if on_event is not None:
            on_event(f"cluster scheduler serving on {server.endpoint}")
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server._shutdown.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await server.serve_until_shutdown()
        finally:
            await server.stop()
            obs.flush()

    asyncio.run(_serve())
