"""The cluster scheduler: campaigns in, leases out, records merged.

This is the distributed twin of
:class:`repro.campaign.runner.CampaignRunner`, split along the
scheduler/worker seam: the scheduler owns job expansion, the lease
queue, retry/backoff accounting and finalize, while workers own
execution (:func:`repro.campaign.executor.run_attempt`) and write
records to their own ``shard-<worker_id>/`` sub-store.  Crash recovery
generalizes the runner's broken-pool rebuild: a lease that expires, or
a worker whose connection drops, charges the job exactly one attempt
and requeues it with the same exponential backoff.

The class is deliberately synchronous with an injected clock — the
asyncio service in :mod:`repro.cluster.service` is a thin transport
shell around it, and every failure path (lease expiry, duplicate
completion, mid-campaign cancel) unit-tests without sockets or sleeps.

Multiple campaigns queue FIFO and drain through the same worker fleet:
a lease request scans campaigns in submission order and takes the
first eligible job, which is what lets ``repro cluster serve`` accept
a second submission while the first is still running.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.campaign import executor as executor_mod
from repro.obs import tracectx
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    STATUS_CRASHED,
    STATUS_OK,
    JobRecord,
    ResultStore,
)
from repro.cluster.queue import Lease, LeaseQueue, QueuedJob

STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_CANCELLED = "cancelled"

SCHEDULER_SHARD = "scheduler"


@dataclass
class WorkerInfo:
    """What the scheduler knows about one registered worker."""

    worker_id: str
    pid: int = 0
    last_seen: float = 0.0
    connected: bool = True
    jobs_done: int = 0


@dataclass
class CampaignExec:
    """One submitted campaign's execution state."""

    campaign_id: str
    spec: CampaignSpec
    store: ResultStore
    queue: LeaseQueue
    state: str = STATE_RUNNING
    counts: dict = field(default_factory=dict)
    retries: int = 0
    skipped: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    # Trace context: the campaign's trace id and the id reserved for
    # its root span.  The span event itself is emitted at finalize
    # (duration known); reserving the id at submit lets every job
    # message carry it, so worker spans parent to a span that does not
    # exist in any sink yet.
    trace_id: str = ""
    span_id: str = ""
    span_wall: float = 0.0

    def bump(self, status: str) -> None:
        self.counts[status] = self.counts.get(status, 0) + 1

    def wire_trace(self) -> Optional[dict]:
        """The ``trace`` payload for this campaign's lease messages."""
        if not self.trace_id:
            return None
        return {"trace": self.trace_id, "parent": self.span_id or None}


class ClusterScheduler:
    """Synchronous scheduler core (transport-free, clock-injected).

    Args:
        lease_seconds: lease lifetime between heartbeats; expiry charges
            the leased job one attempt.
        heartbeat_seconds: interval workers are told to heartbeat at
            (must be comfortably under ``lease_seconds``).
        clock: monotonic time source, injected in tests.
        on_event: optional human-readable progress callback (the CLI
            prints these lines, mirroring the runner's ``on_event``).
    """

    def __init__(
        self,
        lease_seconds: float = 30.0,
        heartbeat_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.lease_seconds = lease_seconds
        self.heartbeat_seconds = heartbeat_seconds
        self.clock = clock
        self.campaigns: dict[str, CampaignExec] = {}
        self.workers: dict[str, WorkerInfo] = {}
        self._order: list[str] = []
        self._submit_seq = 0
        self._on_event = on_event

    def _emit(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    # -- campaign lifecycle ---------------------------------------------
    def submit(
        self, spec: CampaignSpec, store_root, resume: bool = False
    ) -> str:
        """Open (or resume) a campaign and queue its unfinished jobs.

        Inherits the store's spec-hash check: submitting a spec against
        a directory holding a different campaign raises
        :class:`repro.campaign.store.SpecMismatchError`.
        """
        store = ResultStore(store_root)
        store.open_campaign(spec, resume=resume)
        all_jobs = spec.jobs()
        # Records may still be sitting un-merged in shards from an
        # earlier scheduler that died before finalize — resume must not
        # re-run those jobs (and merge will reconcile them).
        done_ids = store.completed_ids(include_shards=True)
        now = self.clock()
        pending = [
            QueuedJob(job=job, position=position, enqueued_at=now)
            for position, job in enumerate(all_jobs)
            if job.job_id not in done_ids
        ]
        self._submit_seq += 1
        campaign_id = f"c{self._submit_seq}-{spec.name}"
        queue = LeaseQueue(
            jobs=pending,
            max_retries=spec.max_retries,
            retry_backoff=spec.retry_backoff,
            lease_seconds=self.lease_seconds,
            clock=self.clock,
        )
        exec_ = CampaignExec(
            campaign_id=campaign_id,
            spec=spec,
            store=store,
            queue=queue,
            skipped=len(all_jobs) - len(pending),
            started_at=self.clock(),
        )
        if obs.enabled():
            # One trace per campaign; join an inherited process trace
            # (REPRO_OBS_TRACE) if the scheduler itself runs inside one.
            exec_.trace_id = (
                tracectx.current_trace_id() or tracectx.new_trace_id()
            )
            exec_.span_id = obs.new_span_id()
            exec_.span_wall = time.time()
        self.campaigns[campaign_id] = exec_
        self._order.append(campaign_id)
        obs.counter_add("cluster.campaigns_submitted")
        obs.observe("cluster.queue_depth", len(pending))
        obs.log(
            "info",
            "campaign started",
            campaign=spec.name,
            campaign_id=campaign_id,
            experiment=spec.experiment,
            jobs=len(pending),
            workers=len([w for w in self.workers.values() if w.connected]),
        )
        self._emit(
            f"submitted {campaign_id}: {len(pending)} jobs "
            f"({exec_.skipped} already recorded)"
        )
        if not pending:
            self._finalize(exec_)
        return campaign_id

    def cancel(self, campaign_id: str) -> bool:
        """Drop a campaign's pending jobs and finalize what it has."""
        exec_ = self.campaigns.get(campaign_id)
        if exec_ is None or exec_.state != STATE_RUNNING:
            return False
        dropped = exec_.queue.clear_pending()
        exec_.counts["cancelled"] = dropped + exec_.queue.leased_count
        exec_.state = STATE_CANCELLED
        self._finalize(exec_, state=STATE_CANCELLED)
        obs.counter_add("cluster.campaigns_cancelled")
        self._emit(f"cancelled {campaign_id} ({dropped} jobs dropped)")
        return True

    def _finalize(self, exec_: CampaignExec, state: str = STATE_DONE) -> None:
        """Merge shards into the main store and stamp the manifest —
        after this, ``campaign report``/``diag``/``obs`` read the merged
        directory exactly as if the local runner had produced it."""
        # Merge/finalize spans attach under the campaign span (managed
        # manually, so it is never on this thread's stack).
        with tracectx.adopted(exec_.wire_trace()):
            merged = exec_.store.merge_shards()
            counts = dict(exec_.counts)
            counts["skipped"] = exec_.skipped
            exec_.store.finalize(counts)
        exec_.state = state
        exec_.finished_at = self.clock()
        if exec_.span_id:
            obs.emit_span_event(
                "cluster.campaign",
                ts=exec_.span_wall,
                dur=max(0.0, exec_.finished_at - exec_.started_at),
                span_id=exec_.span_id,
                trace=exec_.trace_id,
                status="ok" if state == STATE_DONE else state,
                campaign=exec_.spec.name,
                campaign_id=exec_.campaign_id,
                experiment=exec_.spec.experiment,
            )
        obs.log(
            "info",
            "campaign finalized",
            campaign_id=exec_.campaign_id,
            state=state,
            merged_records=merged,
            **{k: v for k, v in counts.items()},
        )
        obs.flush()
        self._emit(
            f"finalized {exec_.campaign_id}: "
            + (", ".join(f"{v} {k}" for k, v in sorted(counts.items())) or "empty")
        )

    def active(self) -> bool:
        """Whether any campaign is still running."""
        return any(
            e.state == STATE_RUNNING for e in self.campaigns.values()
        )

    # -- worker lifecycle -----------------------------------------------
    def register_worker(self, worker_id: str, pid: int = 0) -> dict:
        """Admit a worker; returns the ``registered`` message body."""
        self.workers[worker_id] = WorkerInfo(
            worker_id=worker_id, pid=pid, last_seen=self.clock()
        )
        obs.counter_add("cluster.workers_registered")
        self._emit(f"worker {worker_id} registered (pid {pid})")
        return {
            "heartbeat_seconds": self.heartbeat_seconds,
            "lease_seconds": self.lease_seconds,
        }

    def heartbeat(self, worker_id: str) -> None:
        """Refresh every lease the worker holds."""
        info = self.workers.get(worker_id)
        if info is not None:
            info.last_seen = self.clock()
        for exec_ in self.campaigns.values():
            if exec_.state == STATE_RUNNING:
                exec_.queue.heartbeat(worker_id)

    def disconnect_worker(self, worker_id: str) -> None:
        """A worker's connection dropped: its leases return to the
        queue *now* (a closed socket is proof of death — no need to
        wait out the lease)."""
        info = self.workers.get(worker_id)
        if info is None or not info.connected:
            return
        info.connected = False
        released = 0
        for exec_ in self.campaigns.values():
            if exec_.state != STATE_RUNNING:
                continue
            for lease in exec_.queue.release_worker(worker_id):
                self._charge_crash(
                    exec_,
                    lease,
                    f"worker {worker_id} disconnected mid-job",
                )
                released += 1
            if exec_.queue.drained():
                self._finalize(exec_)
        if released:
            obs.counter_add("cluster.leases_released", released)
        self._emit(
            f"worker {worker_id} disconnected ({released} leases released)"
        )

    # -- the lease/result plane -----------------------------------------
    def request_lease(self, worker_id: str) -> Optional[dict]:
        """Hand the next eligible job to ``worker_id`` as a ``job``
        message body, or ``None`` when nothing is ready."""
        info = self.workers.get(worker_id)
        if info is not None:
            info.last_seen = self.clock()
        for campaign_id in self._order:
            exec_ = self.campaigns[campaign_id]
            if exec_.state != STATE_RUNNING:
                continue
            lease = exec_.queue.lease(worker_id)
            if lease is None:
                continue
            if obs.enabled():
                if lease.queued.enqueued_at:
                    obs.observe(
                        "cluster.lease_wait_seconds",
                        max(0.0, lease.issued_at - lease.queued.enqueued_at),
                    )
                obs.observe(
                    "cluster.queue_depth",
                    exec_.queue.pending_count + exec_.queue.leased_count,
                )
            return self._job_message(exec_, lease)
        return None

    def idle_retry_after(self) -> float:
        """How long an idle worker should wait before re-asking."""
        waits = [
            exec_.queue.next_eligible_in()
            for exec_ in self.campaigns.values()
            if exec_.state == STATE_RUNNING
        ]
        waits = [w for w in waits if w is not None]
        if not waits:
            return 0.2
        return min(0.2, max(0.02, min(waits)))

    def _job_message(self, exec_: CampaignExec, lease: Lease) -> dict:
        queued = lease.queued
        job = queued.job
        payload = {
            "job_id": job.job_id,
            "experiment": job.experiment,
            "params": job.params_dict(),
            "seed": job.seed,
            "timeout_seconds": exec_.spec.timeout_seconds,
            "attempt": queued.attempt,
        }
        inject = exec_.spec.inject_failures
        if inject is not None and inject.applies_to(
            job, queued.position, queued.attempt
        ):
            payload["inject_mode"] = inject.mode
            # A cluster worker must not hard-exit on an injected crash:
            # unlike a pool worker there is nothing to respawn it, so
            # the drill surfaces as WorkerCrash (the in-process
            # executor's convention).  Real worker death is exercised
            # by the SIGKILL drill instead.
            payload["allow_hard_crash"] = False
        message = {
            "campaign_id": exec_.campaign_id,
            "lease_id": lease.lease_id,
            "job_id": job.job_id,
            "trial": job.trial,
            "payload": payload,
            "final": exec_.queue.is_final_attempt(queued),
            "store_root": str(exec_.store.root),
        }
        trace = exec_.wire_trace()
        if trace is not None:
            message["trace"] = trace
        return message

    def handle_result(self, worker_id: str, message: dict) -> None:
        """Consume one worker ``result``; stale completions (lease
        already rescheduled / campaign gone) are no-ops — the record
        the worker wrote is reconciled by dedupe at merge time."""
        exec_ = self.campaigns.get(message.get("campaign_id", ""))
        if exec_ is None or exec_.state != STATE_RUNNING:
            obs.counter_add("cluster.results_stale")
            return
        job_id = message.get("job_id", "")
        queued = exec_.queue.resolve(job_id, worker_id)
        if queued is None:
            obs.counter_add("cluster.results_stale")
            return
        obs.counter_add("cluster.attempts")
        status = message.get("status", "")
        if status == STATUS_OK:
            exec_.queue.mark_done(job_id)
            exec_.bump(STATUS_OK)
            info = self.workers.get(worker_id)
            if info is not None:
                info.jobs_done += 1
            obs.counter_add("campaign.ok")
            obs.observe(
                "campaign.job_seconds", float(message.get("duration", 0.0))
            )
            self._emit(
                f"ok {job_id} via {worker_id} "
                f"({float(message.get('duration', 0.0)):.2f}s, "
                f"attempt {queued.attempt + 1})"
            )
        elif exec_.queue.is_final_attempt(queued):
            # The worker already wrote the terminal failure record to
            # its shard (it was told final=true on the lease).
            exec_.queue.mark_done(job_id)
            exec_.bump(status)
            obs.counter_add(f"campaign.{status}")
            obs.log(
                "warning",
                "job gave up",
                job_id=job_id,
                status=status,
                attempts=queued.attempt + 1,
                error=message.get("error"),
            )
            self._emit(
                f"gave up on {job_id} after {queued.attempt + 1} attempts: "
                f"{message.get('error')}"
            )
        else:
            delay = exec_.queue.retry(queued)
            exec_.retries += 1
            obs.counter_add("campaign.retries")
            obs.observe("cluster.backoff_seconds", delay)
            self._emit(
                f"retry {job_id} (attempt {queued.attempt + 1}, "
                f"after {delay:.2f}s): {message.get('error')}"
            )
        if exec_.queue.drained():
            self._finalize(exec_)

    # -- crash recovery --------------------------------------------------
    def _timeout_enforced_hint(self, exec_: CampaignExec) -> Optional[bool]:
        if (
            exec_.spec.timeout_seconds is not None
            and not executor_mod.alarm_supported()
        ):
            return False
        return None

    def _charge_crash(
        self, exec_: CampaignExec, lease: Lease, error: str
    ) -> None:
        """Charge a dead lease one attempt — retry with backoff or
        record the terminal crash, mirroring the runner's broken-pool
        accounting (in-flight jobs are charged exactly once)."""
        queued = lease.queued
        if not exec_.queue.is_final_attempt(queued):
            delay = exec_.queue.retry(queued)
            exec_.retries += 1
            obs.counter_add("campaign.retries")
            obs.observe("cluster.backoff_seconds", delay)
            self._emit(
                f"retry {queued.job.job_id} (attempt {queued.attempt + 1}, "
                f"after {delay:.2f}s): {error}"
            )
            return
        job = queued.job
        record = JobRecord(
            job_id=job.job_id,
            experiment=job.experiment,
            params=job.params_dict(),
            trial=job.trial,
            seed=job.seed,
            status=STATUS_CRASHED,
            attempts=queued.attempt + 1,
            duration_seconds=max(0.0, self.clock() - lease.issued_at),
            error=error,
            timeout_enforced=self._timeout_enforced_hint(exec_),
        )
        shard = exec_.store.shard_store(SCHEDULER_SHARD)
        shard.root.mkdir(parents=True, exist_ok=True)
        shard.append(record)
        exec_.queue.mark_done(job.job_id)
        exec_.bump(STATUS_CRASHED)
        obs.counter_add("campaign.crashed")
        obs.log(
            "warning",
            "job gave up",
            job_id=job.job_id,
            status=STATUS_CRASHED,
            attempts=queued.attempt + 1,
            error=error,
        )
        self._emit(
            f"gave up on {job.job_id} after {queued.attempt + 1} "
            f"attempts: {error}"
        )

    def tick(self) -> None:
        """Periodic housekeeping: expire overdue leases (heartbeat
        loss ⇒ crash recovery) and finalize drained campaigns."""
        for exec_ in list(self.campaigns.values()):
            if exec_.state != STATE_RUNNING:
                continue
            for lease in exec_.queue.expire():
                obs.counter_add("cluster.leases_expired")
                self._charge_crash(
                    exec_,
                    lease,
                    f"lease expired (worker {lease.worker_id} "
                    f"missed heartbeats)",
                )
            if exec_.queue.drained():
                self._finalize(exec_)

    # -- introspection ---------------------------------------------------
    def status_payload(self) -> dict:
        """The ``cluster status`` wire payload."""
        now = self.clock()
        return {
            "campaigns": [
                {
                    "campaign_id": e.campaign_id,
                    "name": e.spec.name,
                    "experiment": e.spec.experiment,
                    "state": e.state,
                    "store": str(e.store.root),
                    "pending": e.queue.pending_count,
                    "leased": e.queue.leased_count,
                    "done": e.queue.done_count,
                    "skipped": e.skipped,
                    "retries": e.retries,
                    "counts": dict(e.counts),
                    "elapsed_seconds": (
                        (e.finished_at or now) - e.started_at
                    ),
                }
                for cid in self._order
                for e in (self.campaigns[cid],)
            ],
            "workers": [
                {
                    "worker_id": w.worker_id,
                    "pid": w.pid,
                    "connected": w.connected,
                    "jobs_done": w.jobs_done,
                    "last_seen_seconds_ago": max(0.0, now - w.last_seen),
                }
                for w in self.workers.values()
            ],
        }
