"""The cluster worker: lease, execute, record, repeat.

A worker is a plain blocking client of the scheduler.  Jobs run on the
worker's **main thread** so the per-job ``SIGALRM`` wall-clock budget
from :func:`repro.campaign.executor.execute_payload` keeps working;
heartbeats ride a daemon thread (the
:class:`~repro.cluster.protocol.MessageStream` send lock keeps the two
from interleaving on the wire).

Record-writing split (the determinism-critical part):

- ``ok`` outcomes and **final**-attempt failures are written by the
  worker to its own ``shard-<worker_id>/`` sub-store *before* the
  result is reported, so a scheduler crash right after execution never
  loses a finished job;
- non-final failures produce no record — the scheduler requeues the
  job with backoff, exactly like the single-host runner's retry path;
- a worker that dies mid-job writes nothing, and the scheduler's lease
  expiry / disconnect handling charges the attempt.

Observability: workers self-activate from the ``REPRO_OBS``
environment variable at import (the standard obs mechanism) — the
one-shot ``repro cluster run --obs`` front end points each worker at
``<store>/shard-<worker_id>/obs.jsonl`` so a sharded campaign is
watchable live with ``repro obs watch --obs '<store>/shard-*/obs.jsonl'``.
Each ``job`` message may carry the campaign's trace context; the worker
adopts it for exactly that job (:func:`repro.obs.tracectx.adopted`), so
its ``campaign.job`` spans parent to the scheduler's campaign span and
``obs report --trace`` over the merged sinks shows one tree.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Callable, Optional

from repro import obs
from repro.campaign.executor import run_attempt
from repro.campaign.store import JobRecord, ResultStore
from repro.cluster import protocol
from repro.cluster.protocol import Endpoint, MessageStream
from repro.obs import tracectx


def default_worker_id() -> str:
    """A collision-free worker name: host-ish pid plus random tail."""
    return f"w{os.getpid()}-{uuid.uuid4().hex[:6]}"


class ClusterWorker:
    """One worker process's client loop.

    Args:
        endpoint: where the scheduler listens.
        worker_id: stable name; also the shard directory suffix.
        on_event: optional human-readable progress callback.
        max_jobs: stop after this many executed jobs (test hook).
    """

    def __init__(
        self,
        endpoint: Endpoint,
        worker_id: Optional[str] = None,
        on_event: Optional[Callable[[str], None]] = None,
        max_jobs: Optional[int] = None,
    ) -> None:
        self.endpoint = endpoint
        self.worker_id = worker_id or default_worker_id()
        self._on_event = on_event
        self._max_jobs = max_jobs
        self._stop = threading.Event()
        self.jobs_done = 0

    def _emit(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    # -- heartbeats ------------------------------------------------------
    def _heartbeat_loop(self, stream: MessageStream, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                stream.send(
                    {"type": protocol.MSG_HEARTBEAT, "worker_id": self.worker_id}
                )
            except OSError:
                # Scheduler gone; the main loop will see EOF and exit.
                self._stop.set()
                return

    # -- job execution ---------------------------------------------------
    def _run_job(self, stream: MessageStream, message: dict) -> None:
        payload = message["payload"]
        job_id = message["job_id"]
        # Adopt the campaign's trace for exactly this job: a parked
        # worker serves many campaigns, so the context is per-lease,
        # not per-process.  The job's spans (and the shard store's)
        # then parent to the scheduler's campaign span.
        with tracectx.adopted(message.get("trace")):
            outcome = run_attempt(payload)
            if outcome.ok or message.get("final"):
                # Terminal either way — persist before reporting, so
                # the record survives a scheduler crash between the two.
                shard = ResultStore(message["store_root"]).shard_store(
                    self.worker_id
                )
                shard.root.mkdir(parents=True, exist_ok=True)
                shard.append(
                    JobRecord(
                        job_id=job_id,
                        experiment=payload["experiment"],
                        params=payload["params"],
                        trial=int(message.get("trial", 0)),
                        seed=payload["seed"],
                        status=outcome.status,
                        attempts=int(payload.get("attempt", 0)) + 1,
                        duration_seconds=outcome.duration,
                        metrics=outcome.metrics,
                        error=outcome.error,
                        timeout_enforced=outcome.timeout_enforced,
                    )
                )
        self.jobs_done += 1
        obs.counter_add("cluster.worker_jobs")
        result = {
            "type": protocol.MSG_RESULT,
            "worker_id": self.worker_id,
            "campaign_id": message["campaign_id"],
            "lease_id": message["lease_id"],
            "job_id": job_id,
            "status": outcome.status,
            "duration": outcome.duration,
        }
        if outcome.error is not None:
            result["error"] = outcome.error
        if outcome.timeout_enforced is not None:
            result["timeout_enforced"] = outcome.timeout_enforced
        if message.get("trace") is not None:
            result["trace"] = message["trace"]
        stream.send(result)
        self._emit(
            f"{outcome.status} {job_id} "
            f"(attempt {int(payload.get('attempt', 0)) + 1}, "
            f"{outcome.duration:.2f}s)"
        )

    # -- the main loop ---------------------------------------------------
    def run(self) -> int:
        """Serve until drained or disconnected; returns jobs executed."""
        sock = self.endpoint.connect()
        stream = MessageStream(sock)
        heartbeat_thread = None
        try:
            stream.send(
                {
                    "type": protocol.MSG_REGISTER,
                    "worker_id": self.worker_id,
                    "pid": os.getpid(),
                    "protocol": protocol.PROTOCOL_VERSION,
                }
            )
            ack = stream.recv()
            if ack is None or ack.get("type") != protocol.MSG_REGISTERED:
                raise protocol.ProtocolError(
                    f"expected {protocol.MSG_REGISTERED!r}, got {ack!r}"
                )
            interval = float(ack.get("heartbeat_seconds", 5.0))
            heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(stream, interval),
                daemon=True,
                name=f"heartbeat-{self.worker_id}",
            )
            heartbeat_thread.start()
            self._emit(
                f"worker {self.worker_id} registered at {self.endpoint}"
            )

            while not self._stop.is_set():
                if (
                    self._max_jobs is not None
                    and self.jobs_done >= self._max_jobs
                ):
                    break
                stream.send(
                    {"type": protocol.MSG_LEASE, "worker_id": self.worker_id}
                )
                message = stream.recv()
                if message is None:
                    self._emit("scheduler connection closed; exiting")
                    break
                kind = message.get("type")
                if kind == protocol.MSG_JOB:
                    self._run_job(stream, message)
                elif kind == protocol.MSG_IDLE:
                    time.sleep(float(message.get("retry_after", 0.2)))
                elif kind == protocol.MSG_DRAIN:
                    self._emit("drained; exiting")
                    break
                else:
                    raise protocol.ProtocolError(
                        f"unexpected message type {kind!r} for a lease"
                    )
            try:
                stream.send(
                    {"type": protocol.MSG_GOODBYE, "worker_id": self.worker_id}
                )
            except OSError:
                pass
            return self.jobs_done
        finally:
            self._stop.set()
            if heartbeat_thread is not None:
                heartbeat_thread.join(timeout=1.0)
            stream.close()
            obs.flush()
