"""Set-associative sliced cache with LRU replacement and CAT masks.

Geometry defaults model a small LLC: 4 slices x 1024 sets x 16 ways of
64-byte lines (4 MiB).  Addresses are *physical*; set index bits sit
directly above the line offset, and the slice is chosen by an
XOR-of-address-bits hash in the style reverse engineered by Maurice et
al. / Liu et al. (the paper's reference [38]).

Intel CAT is modelled faithfully to its architectural contract: a
class-of-service (COS) capacity bitmask constrains which ways an access
may *fill on a miss*; hits are served from any way.  This is exactly the
property the paper exploits — "Intel CAT can effectively reduce the
cache to a single way" for the victim/attacker partition, making
evictions deterministic while other traffic is confined elsewhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

LINE_BITS = 6
LINE_SIZE = 1 << LINE_BITS


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the simulated LLC.

    ``replacement`` selects the victim policy: ``"lru"`` (true LRU by
    access stamp) or ``"plru"`` (tree pseudo-LRU, what real LLC ways
    implement; requires a power-of-two way count).
    """

    n_slices: int = 4
    sets_per_slice: int = 1024
    ways: int = 16
    hit_latency: float = 40.0
    miss_latency: float = 200.0
    noise_sigma: float = 6.0
    seed: int = 2024
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.replacement not in ("lru", "plru"):
            raise ValueError(f"unknown replacement {self.replacement!r}")
        if self.replacement == "plru" and self.ways & (self.ways - 1):
            raise ValueError("plru needs a power-of-two way count")

    @property
    def set_bits(self) -> int:
        return (self.sets_per_slice - 1).bit_length()

    @property
    def capacity_bytes(self) -> int:
        return self.n_slices * self.sets_per_slice * self.ways * LINE_SIZE


# Slice-hash bit masks (per output bit, XOR-parity of the selected
# physical address bits), shaped after the reverse-engineered Intel
# functions.  Only bits >= LINE_BITS participate.
_SLICE_MASKS = (
    0x1B5F575440,
    0x2EB5FAA880,
)


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    latency: float
    evicted: Optional[int] = None  # line address pushed out, if any


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


class PlruTree:
    """Tree pseudo-LRU state for one set.

    ``bits[node]`` points toward the *less recently used* subtree
    (0 = left, 1 = right); touching a way flips the bits on its root
    path to point away from it.  Victim selection follows the bits,
    constrained to ways the access's CAT mask allows (a node whose
    indicated subtree holds no allowed way is overridden).
    """

    __slots__ = ("ways", "bits")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.bits = [0] * (ways - 1)

    def touch(self, way: int) -> None:
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:  # accessed left subtree: point at right
                self.bits[node] = 1
                node, hi = 2 * node + 1, mid
            else:
                self.bits[node] = 0
                node, lo = 2 * node + 2, mid

    def victim(self, allowed: frozenset[int] | set[int] | tuple[int, ...]) -> int:
        allowed_set = set(allowed)
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            left_ok = any(lo <= w < mid for w in allowed_set)
            right_ok = any(mid <= w < hi for w in allowed_set)
            go_right = self.bits[node] == 1
            if go_right and not right_ok:
                go_right = False
            elif not go_right and not left_ok:
                go_right = True
            if go_right:
                node, lo = 2 * node + 2, mid
            else:
                node, hi = 2 * node + 1, mid
        return lo


class Cache:
    """The shared last-level cache.

    State per (slice, set) is a dict ``way -> (tag, stamp)``; LRU is by
    global access stamp.  ``cos_masks`` maps a class of service to the
    tuple of way indices its misses may fill; COS 0 defaults to all ways.
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._rng = random.Random(self.config.seed)
        self._stamp = 0
        cfg = self.config
        self._sets: list[list[dict[int, tuple[int, int]]]] = [
            [dict() for _ in range(cfg.sets_per_slice)]
            for _ in range(cfg.n_slices)
        ]
        self._plru: dict[tuple[int, int], PlruTree] = {}
        self.cos_masks: dict[int, tuple[int, ...]] = {
            0: tuple(range(cfg.ways))
        }
        self.stats = {"hits": 0, "misses": 0, "flushes": 0}

    # -- address mapping -------------------------------------------------
    def slice_of(self, paddr: int) -> int:
        if self.config.n_slices == 1:
            return 0
        bits = (self.config.n_slices - 1).bit_length()
        out = 0
        for k in range(bits):
            out |= _parity(paddr & _SLICE_MASKS[k]) << k
        return out % self.config.n_slices

    def set_of(self, paddr: int) -> int:
        return (paddr >> LINE_BITS) & (self.config.sets_per_slice - 1)

    def location(self, paddr: int) -> tuple[int, int]:
        """(slice, set) a physical address maps to."""
        return self.slice_of(paddr), self.set_of(paddr)

    # -- the access path -------------------------------------------------
    def _latency(self, base: float) -> float:
        return max(1.0, self._rng.gauss(base, self.config.noise_sigma))

    def access(self, paddr: int, cos: int = 0) -> AccessResult:
        """Load/store the line containing ``paddr`` under class ``cos``."""
        tag = paddr >> LINE_BITS
        sl, st = self.location(paddr)
        ways = self._sets[sl][st]
        self._stamp += 1

        plru = None
        if self.config.replacement == "plru":
            plru = self._plru.get((sl, st))
            if plru is None:
                plru = self._plru[(sl, st)] = PlruTree(self.config.ways)

        for way, (wtag, _) in ways.items():
            if wtag == tag:
                ways[way] = (tag, self._stamp)
                if plru is not None:
                    plru.touch(way)
                self.stats["hits"] += 1
                return AccessResult(True, self._latency(self.config.hit_latency))

        self.stats["misses"] += 1
        allowed = self.cos_masks.get(cos, self.cos_masks[0])
        evicted: Optional[int] = None
        free = [w for w in allowed if w not in ways]
        if free:
            victim_way = free[0]
        elif plru is not None:
            victim_way = plru.victim(allowed)
            evicted = ways[victim_way][0] << LINE_BITS
        else:
            victim_way = min(allowed, key=lambda w: ways[w][1])
            evicted = ways[victim_way][0] << LINE_BITS
        ways[victim_way] = (tag, self._stamp)
        if plru is not None:
            plru.touch(victim_way)
        return AccessResult(
            False, self._latency(self.config.miss_latency), evicted
        )

    def flush(self, paddr: int) -> None:
        """clflush: remove the line from the cache entirely."""
        tag = paddr >> LINE_BITS
        sl, st = self.location(paddr)
        ways = self._sets[sl][st]
        for way, (wtag, _) in list(ways.items()):
            if wtag == tag:
                del ways[way]
        self.stats["flushes"] += 1

    def contains(self, paddr: int) -> bool:
        tag = paddr >> LINE_BITS
        sl, st = self.location(paddr)
        return any(wtag == tag for wtag, _ in self._sets[sl][st].values())

    def occupancy(self, sl: int, st: int) -> int:
        return len(self._sets[sl][st])

    def clear(self) -> None:
        for per_slice in self._sets:
            for ways in per_slice:
                ways.clear()
