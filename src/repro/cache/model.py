"""Set-associative sliced cache with LRU replacement and CAT masks.

Geometry defaults model a small LLC: 4 slices x 1024 sets x 16 ways of
64-byte lines (4 MiB).  Addresses are *physical*; set index bits sit
directly above the line offset, and the slice is chosen by an
XOR-of-address-bits hash in the style reverse engineered by Maurice et
al. / Liu et al. (the paper's reference [38]).

Intel CAT is modelled faithfully to its architectural contract: a
class-of-service (COS) capacity bitmask constrains which ways an access
may *fill on a miss*; hits are served from any way.  This is exactly the
property the paper exploits — "Intel CAT can effectively reduce the
cache to a single way" for the victim/attacker partition, making
evictions deterministic while other traffic is confined elsewhere.

The access path is the hottest loop in the whole simulator (every
victim instruction, every prime, every probe, every noise line lands
here), so the line state lives in flat preallocated ``array('q')``
buffers rather than per-set dicts, the slice hash is a 16-bit parity
table plus a per-line memo, and latency noise draws its standard-normal
variates from a prefetched buffer.  All of it is bit-compatible with
the straightforward model it replaced: same hit/miss/eviction stream,
same RNG consumption, same latencies to the last float bit.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from math import cos as _cos, log as _log, pi as _pi, sin as _sin, sqrt as _sqrt
from typing import Optional

from repro import obs

_TWOPI = 2.0 * _pi

LINE_BITS = 6
LINE_SIZE = 1 << LINE_BITS


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the simulated LLC.

    ``replacement`` selects the victim policy: ``"lru"`` (true LRU by
    access stamp) or ``"plru"`` (tree pseudo-LRU, what real LLC ways
    implement; requires a power-of-two way count).
    """

    n_slices: int = 4
    sets_per_slice: int = 1024
    ways: int = 16
    hit_latency: float = 40.0
    miss_latency: float = 200.0
    noise_sigma: float = 6.0
    seed: int = 2024
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.replacement not in ("lru", "plru"):
            raise ValueError(f"unknown replacement {self.replacement!r}")
        if self.replacement == "plru" and self.ways & (self.ways - 1):
            raise ValueError("plru needs a power-of-two way count")

    @property
    def set_bits(self) -> int:
        return (self.sets_per_slice - 1).bit_length()

    @property
    def capacity_bytes(self) -> int:
        return self.n_slices * self.sets_per_slice * self.ways * LINE_SIZE


# Slice-hash bit masks (per output bit, XOR-parity of the selected
# physical address bits), shaped after the reverse-engineered Intel
# functions.  Only bits >= LINE_BITS participate, so the slice (and the
# set, whose index bits sit directly above the offset) depend only on
# the line address — which is what lets Cache memoise per line.
_SLICE_MASKS = (
    0x1B5F575440,
    0x2EB5FAA880,
)

# Parity of every 16-bit value; _parity folds wider words onto it.
_PARITY16 = bytes(bin(i).count("1") & 1 for i in range(1 << 16))

def _parity(x: int) -> int:
    """XOR-parity of an address-sized (< 2**64) integer."""
    x ^= x >> 32
    x ^= x >> 16
    return _PARITY16[x & 0xFFFF]


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    latency: float
    evicted: Optional[int] = None  # line address pushed out, if any


@dataclass(slots=True)
class BatchAccessResult:
    """Outcome of one :meth:`Cache.access_many` call: per-access columns
    in input order, equal to what a scalar :meth:`Cache.access` loop
    would have produced access by access."""

    hits: "np.ndarray"  # bool, per access
    latencies: "np.ndarray"  # float64, per access
    evicted: list[Optional[int]]  # per access, line address or None

    @property
    def n_hits(self) -> int:
        return int(self.hits.sum())


class PlruTree:
    """Tree pseudo-LRU state for one set.

    ``bits[node]`` points toward the *less recently used* subtree
    (0 = left, 1 = right); touching a way flips the bits on its root
    path to point away from it.  Victim selection follows the bits,
    constrained to ways the access's CAT mask allows (a node whose
    indicated subtree holds no allowed way is overridden).
    """

    __slots__ = ("ways", "bits")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.bits = [0] * (ways - 1)

    def touch(self, way: int) -> None:
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:  # accessed left subtree: point at right
                self.bits[node] = 1
                node, hi = 2 * node + 1, mid
            else:
                self.bits[node] = 0
                node, lo = 2 * node + 2, mid

    def victim(self, allowed) -> int:
        mask = 0
        for w in allowed:
            mask |= 1 << w
        return self.victim_mask(mask)

    def victim_mask(self, allowed_mask: int) -> int:
        """Victim way given the allowed ways as a bitmask (bit w set =
        way w allowed); subtree occupancy tests are single AND ops."""
        bits = self.bits
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            left_ok = allowed_mask & ((1 << mid) - (1 << lo))
            right_ok = allowed_mask & ((1 << hi) - (1 << mid))
            go_right = bits[node] == 1
            if go_right and not right_ok:
                go_right = False
            elif not go_right and not left_ok:
                go_right = True
            if go_right:
                node, lo = 2 * node + 2, mid
            else:
                node, hi = 2 * node + 1, mid
        return lo


# How many standard-normal variates to prefetch per refill of the
# latency-noise buffer.
_Z_BATCH = 512


class Cache:
    """The shared last-level cache.

    Line state is two flat arrays indexed ``(slice * sets + set) * ways
    + way``: ``_tags`` (line tag, -1 = empty) and ``_stamps`` (global
    access stamp for LRU).  ``cos_masks`` maps a class of service to the
    tuple of way indices its misses may fill; COS 0 defaults to all
    ways.

    Latency noise is ``rng.gauss(base, sigma)``; CPython's gauss
    computes ``mu + z * sigma`` from a mu/sigma-independent variate
    stream, so the variates are prefetched in batches (the exact
    Box-Muller pair recurrence CPython uses, same uniform draws, same
    float ops) and the affine map applied here — identical latencies,
    a fraction of the work.

    Noise is only drawn for accesses whose latency is *observed*
    (:meth:`access` / :meth:`access_timed`).  Fill traffic that nobody
    times — priming, background noise, OS pollution, the victim's own
    touches — goes through :meth:`access_silent`, which updates line
    state identically but skips the draw.  This cannot change any
    timing decision: a Box-Muller variate from 53-bit uniforms is
    bounded by ``sqrt(-2*log(2**-53))`` < 8.6 sigma, while the default
    hit/miss thresholds sit more than 13 sigma from either latency
    mode, so *which* variate a timed access happens to get can never
    flip a hit/miss classification.
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._rng = random.Random(self.config.seed)
        self._stamp = 0
        cfg = self.config
        n = cfg.n_slices * cfg.sets_per_slice * cfg.ways
        self._tags = array("q", [-1]) * n
        self._stamps = array("q", [0]) * n
        self._ways = cfg.ways
        self._nsets = cfg.sets_per_slice
        self._set_mask = cfg.sets_per_slice - 1
        self._plru_on = cfg.replacement == "plru"
        self._plru: dict[int, PlruTree] = {}  # set base -> tree
        self._loc: dict[int, tuple[int, int, int]] = {}  # line tag -> (sl, st, base)
        self._cos_memo: dict[tuple[int, ...], int] = {}  # allowed tuple -> bitmask
        self.cos_masks: dict[int, tuple[int, ...]] = {
            0: tuple(range(cfg.ways))
        }
        self._hits = 0
        self._misses = 0
        self._flushes = 0
        self._evictions = 0
        # Snapshot of the counters at the last publish_stats() call, so
        # repeated publishes emit deltas, not re-counted totals.
        self._published = (0, 0, 0, 0)
        self._zbuf: list[float] = []
        self._zi = 0
        self._hit_lat = cfg.hit_latency
        self._miss_lat = cfg.miss_latency
        self._sigma = cfg.noise_sigma

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self._hits,
            "misses": self._misses,
            "flushes": self._flushes,
            "evictions": self._evictions,
        }

    def publish_stats(self, prefix: str = "cache") -> None:
        """Publish hit/miss/eviction/flush counts to :mod:`repro.obs`.

        Deltas since the previous publish, so end-of-run publishing from
        several phases (or attacks sharing a cache) accumulates each
        access exactly once.  A plain no-op while observability is
        disabled; never called from the per-access hot path."""
        if not obs.enabled():
            return
        counts = (self._hits, self._misses, self._evictions, self._flushes)
        last = self._published
        self._published = counts
        for name, now, before in zip(
            ("hits", "misses", "evictions", "flushes"), counts, last
        ):
            if now != before:
                obs.counter_add(f"{prefix}.{name}", now - before)

    # -- address mapping -------------------------------------------------
    def slice_of(self, paddr: int) -> int:
        if self.config.n_slices == 1:
            return 0
        bits = (self.config.n_slices - 1).bit_length()
        out = 0
        for k in range(bits):
            out |= _parity(paddr & _SLICE_MASKS[k]) << k
        return out % self.config.n_slices

    def set_of(self, paddr: int) -> int:
        return (paddr >> LINE_BITS) & self._set_mask

    def location(self, paddr: int) -> tuple[int, int]:
        """(slice, set) a physical address maps to."""
        sl, st, _ = self._locate(paddr >> LINE_BITS)
        return sl, st

    def locations_for_range(
        self, base: int, n_lines: int
    ) -> list[tuple[int, int]]:
        """(slice, set) for ``n_lines`` consecutive lines from ``base``
        — :meth:`location` of each, computed vectorised.  This is how
        attacker pools precompute the slicing function over their whole
        memory without paying the per-address hash a hundred thousand
        times."""
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a core dep
            return [
                self.location(base + k * LINE_SIZE) for k in range(n_lines)
            ]
        tags = (base >> LINE_BITS) + np.arange(n_lines, dtype=np.int64)
        sets = tags & self._set_mask
        if self.config.n_slices == 1:
            slices = np.zeros(n_lines, dtype=np.int64)
        else:
            paddrs = tags << LINE_BITS
            bits = (self.config.n_slices - 1).bit_length()
            lut = np.frombuffer(_PARITY16, dtype=np.uint8)
            slices = np.zeros(n_lines, dtype=np.int64)
            for k in range(bits):
                v = paddrs & _SLICE_MASKS[k]
                v = v ^ (v >> 32)
                v = v ^ (v >> 16)
                slices |= lut[v & 0xFFFF].astype(np.int64) << k
            slices %= self.config.n_slices
        return list(zip(slices.tolist(), sets.tolist()))

    def _locate(self, tag: int) -> tuple[int, int, int]:
        """(slice, set, flat way-array base) for a line tag, memoised —
        the slice hash and set index depend only on the line address."""
        loc = self._loc.get(tag)
        if loc is None:
            paddr = tag << LINE_BITS
            sl = self.slice_of(paddr)
            st = tag & self._set_mask
            loc = self._loc[tag] = (sl, st, (sl * self._nsets + st) * self._ways)
        return loc

    # -- the access path -------------------------------------------------
    def _refill_z(self) -> list[float]:
        """Refill the standard-normal buffer: CPython's exact Box-Muller
        pair recurrence (same uniforms, same float ops as
        ``Random.gauss``), without the per-call bookkeeping."""
        rnd = self._rng.random
        buf: list[float] = []
        append = buf.append
        for _ in range(_Z_BATCH // 2):
            x2pi = rnd() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - rnd()))
            append(_cos(x2pi) * g2rad)
            append(_sin(x2pi) * g2rad)
        self._zbuf = buf
        return buf

    def _next_z(self) -> float:
        """Next standard-normal variate, from the prefetched batch."""
        i = self._zi
        buf = self._zbuf
        if i >= len(buf):
            buf = self._refill_z()
            i = 0
        self._zi = i + 1
        return buf[i]

    def _latency(self, base: float) -> float:
        lat = base + self._next_z() * self._sigma
        return lat if lat > 1.0 else 1.0

    def _fill(self, tag: int, base: int, cos: int, plru) -> Optional[int]:
        """Miss path: pick a victim way under ``cos``'s mask, install
        ``tag``; returns the evicted line address (or None)."""
        tags = self._tags
        allowed = self.cos_masks.get(cos)
        if allowed is None:
            allowed = self.cos_masks[0]
        evicted: Optional[int] = None
        victim_way = -1
        for w in allowed:
            if tags[base + w] == -1:
                victim_way = w
                break
        if victim_way < 0:
            if plru is not None:
                mask = self._cos_memo.get(allowed)
                if mask is None:
                    mask = 0
                    for w in allowed:
                        mask |= 1 << w
                    self._cos_memo[allowed] = mask
                victim_way = plru.victim_mask(mask)
            else:
                stamps = self._stamps
                best = 1 << 62
                for w in allowed:
                    s = stamps[base + w]
                    if s < best:
                        best = s
                        victim_way = w
            evicted = tags[base + victim_way] << LINE_BITS
            self._evictions += 1
        tags[base + victim_way] = tag
        self._stamps[base + victim_way] = self._stamp
        if plru is not None:
            plru.touch(victim_way)
        return evicted

    def _plru_for(self, base: int) -> Optional[PlruTree]:
        if not self._plru_on:
            return None
        plru = self._plru.get(base)
        if plru is None:
            plru = self._plru[base] = PlruTree(self._ways)
        return plru

    def access(self, paddr: int, cos: int = 0) -> AccessResult:
        """Load/store the line containing ``paddr`` under class ``cos``."""
        tag = paddr >> LINE_BITS
        loc = self._loc.get(tag)
        if loc is None:
            loc = self._locate(tag)
        base = loc[2]
        self._stamp += 1
        plru = self._plru_for(base)
        try:
            idx = self._tags.index(tag, base, base + self._ways)
        except ValueError:
            pass
        else:
            self._stamps[idx] = self._stamp
            if plru is not None:
                plru.touch(idx - base)
            self._hits += 1
            return AccessResult(True, self._latency(self._hit_lat))
        self._misses += 1
        evicted = self._fill(tag, base, cos, plru)
        return AccessResult(False, self._latency(self._miss_lat), evicted)

    def access_timed(self, paddr: int, cos: int = 0) -> float:
        """:meth:`access`, returning just the latency — the probe-loop
        entry point.  Inlined hit path, no result object."""
        tag = paddr >> LINE_BITS
        loc = self._loc.get(tag)
        if loc is None:
            loc = self._locate(tag)
        base = loc[2]
        self._stamp = stamp = self._stamp + 1
        i = self._zi
        buf = self._zbuf
        if i >= len(buf):
            buf = self._refill_z()
            i = 0
        self._zi = i + 1
        z = buf[i]
        plru = self._plru_for(base) if self._plru_on else None
        try:
            idx = self._tags.index(tag, base, base + self._ways)
        except ValueError:
            self._misses += 1
            self._fill(tag, base, cos, plru)
            lat = self._miss_lat + z * self._sigma
            return lat if lat > 1.0 else 1.0
        self._stamps[idx] = stamp
        if plru is not None:
            plru.touch(idx - base)
        self._hits += 1
        lat = self._hit_lat + z * self._sigma
        return lat if lat > 1.0 else 1.0

    def access_silent(self, paddr: int, cos: int = 0) -> None:
        """Line-state update for an access nobody times (prime fills,
        noise traffic, the victim's own touches).  Identical hit/miss/
        eviction behaviour to :meth:`access`; skips the latency draw —
        see the class docstring for why that is unobservable."""
        tag = paddr >> LINE_BITS
        loc = self._loc.get(tag)
        if loc is None:
            loc = self._locate(tag)
        base = loc[2]
        self._stamp = stamp = self._stamp + 1
        if self._plru_on:
            plru = self._plru_for(base)
            try:
                idx = self._tags.index(tag, base, base + self._ways)
            except ValueError:
                self._misses += 1
                self._fill(tag, base, cos, plru)
                return
            self._stamps[idx] = stamp
            plru.touch(idx - base)
            self._hits += 1
            return
        try:
            idx = self._tags.index(tag, base, base + self._ways)
        except ValueError:
            self._misses += 1
            self._fill(tag, base, cos, None)
            return
        self._stamps[idx] = stamp
        self._hits += 1

    # -- the batch access path -------------------------------------------
    #
    # Accesses are stateful (an eviction changes what the next access
    # hits), so the hit scans and fills stay sequential; what batching
    # buys is doing the *stateless* work — address -> (slice, set, way
    # base) mapping and the Box-Muller noise stream — for the whole
    # vector at once, plus hoisting the per-call attribute traffic out
    # of the loop.  Every method consumes RNG state, counters, stamps,
    # and PLRU bits exactly as the equivalent scalar loop would
    # (tests/test_cache_batch.py pins the equivalence).

    def _take_z(self, n: int):
        """Consume the next ``n`` standard-normal variates — the exact
        subsequence ``n`` :meth:`_next_z` calls would return."""
        import numpy as np

        out = np.empty(n)
        i = self._zi
        buf = self._zbuf
        filled = 0
        while filled < n:
            if i >= len(buf):
                buf = self._refill_z()
                i = 0
            take = min(n - filled, len(buf) - i)
            out[filled : filled + take] = buf[i : i + take]
            i += take
            filled += take
        self._zi = i
        return out

    def _batch_walk(self, paddrs, cos: int, hits_out, evicted_out):
        """The shared sequential core: one fused pass per address — the
        scalar hit scan with the memoised mapping and every hot
        attribute hoisted out of the loop.  Repeated sweeps (prime and
        probe rounds, eviction trials) hit the ``_locate`` memo for
        every tag, so the mapping costs one dict get per access."""
        if hasattr(paddrs, "tolist"):
            paddrs = paddrs.tolist()
        get = self._loc.get
        locate = self._locate
        tags = self._tags
        stamps = self._stamps
        ways = self._ways
        stamp = self._stamp
        plru_on = self._plru_on
        plru_for = self._plru_for
        fill = self._fill
        n_hits = 0
        n_misses = 0
        for k, paddr in enumerate(paddrs):
            tag = paddr >> LINE_BITS
            entry = get(tag)
            base = (entry or locate(tag))[2]
            stamp += 1
            plru = plru_for(base) if plru_on else None
            try:
                idx = tags.index(tag, base, base + ways)
            except ValueError:
                n_misses += 1
                self._stamp = stamp  # _fill stamps the installed line
                evicted = fill(tag, base, cos, plru)
                if evicted_out is not None:
                    evicted_out.append(evicted)
            else:
                stamps[idx] = stamp
                if plru is not None:
                    plru.touch(idx - base)
                n_hits += 1
                if hits_out is not None:
                    hits_out[k] = True
                if evicted_out is not None:
                    evicted_out.append(None)
        self._stamp = stamp
        self._hits += n_hits
        self._misses += n_misses

    def access_many(self, paddrs, cos: int = 0) -> BatchAccessResult:
        """:meth:`access` over a whole address vector; same state
        mutations, RNG consumption, and latencies as the scalar loop."""
        import numpy as np

        n = len(paddrs)
        hits = np.zeros(n, dtype=bool)
        evicted: list[Optional[int]] = []
        self._batch_walk(paddrs, cos, hits, evicted)
        zs = self._take_z(n)
        lats = np.where(hits, self._hit_lat, self._miss_lat) + zs * self._sigma
        np.maximum(lats, 1.0, out=lats)
        return BatchAccessResult(hits, lats, evicted)

    def access_many_timed(self, paddrs, cos: int = 0):
        """:meth:`access_timed` over a whole address vector — the probe
        loop entry point.  Returns the float64 latency array."""
        import numpy as np

        n = len(paddrs)
        hits = np.zeros(n, dtype=bool)
        # access_timed draws z before its hit scan; drawing the whole
        # stream before the walk consumes the identical subsequence.
        zs = self._take_z(n)
        self._batch_walk(paddrs, cos, hits, None)
        lats = np.where(hits, self._hit_lat, self._miss_lat) + zs * self._sigma
        np.maximum(lats, 1.0, out=lats)
        return lats

    def access_many_silent(self, paddrs, cos: int = 0) -> None:
        """:meth:`access_silent` over a whole address vector: line-state
        updates only, no latency draws."""
        self._batch_walk(paddrs, cos, None, None)

    def flush(self, paddr: int) -> None:
        """clflush: remove the line from the cache entirely."""
        tag = paddr >> LINE_BITS
        base = self._locate(tag)[2]
        try:
            idx = self._tags.index(tag, base, base + self._ways)
        except ValueError:
            pass
        else:
            self._tags[idx] = -1
        self._flushes += 1

    def contains(self, paddr: int) -> bool:
        tag = paddr >> LINE_BITS
        base = self._locate(tag)[2]
        try:
            self._tags.index(tag, base, base + self._ways)
        except ValueError:
            return False
        return True

    def occupancy(self, sl: int, st: int) -> int:
        base = (sl * self._nsets + st) * self._ways
        segment = self._tags[base : base + self._ways]
        return self._ways - segment.count(-1)

    def clear(self) -> None:
        self._tags = array("q", [-1]) * len(self._tags)
