"""Simulated last-level cache with slices, ways, timing, and Intel CAT.

This is the substitution for real x86 hardware (DESIGN.md): Prime+Probe
and Flush+Reload depend only on set mapping, replacement, and hit/miss
timing separability, all of which the model provides — together with the
two features the paper's attack innovations target: the sliced LLC
(Section V-C1's precomputed slice hash) and Cache Allocation Technology
way partitioning (the paper's first offensive use of CAT).
"""

from repro.cache.model import (
    AccessResult,
    BatchAccessResult,
    Cache,
    CacheConfig,
)
from repro.cache.cat import CatController
from repro.cache.noise import BackgroundNoise, OsPollution

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "BatchAccessResult",
    "CatController",
    "BackgroundNoise",
    "OsPollution",
]
