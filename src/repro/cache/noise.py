"""Noise sources the attack's accuracy techniques exist to defeat.

Two distinct mechanisms, matching the paper's Section V-C:

* :class:`BackgroundNoise` — "cache contention from unrelated
  applications that can lead to false positives" (other cores touching
  random lines).  It runs under its *own* class of service, so CAT
  partitioning (Section V-C1) walls it off completely; with CAT disabled
  it shares ways with the probe lines and evicts them at random.
* :class:`OsPollution` — "the transition between states ... pollutes the
  cache with memory accesses from SGX and the OS" (Section V-C2).  It
  runs in the *attack partition* (same core, same COS), touching a fixed
  working set of kernel/SGX lines on every page fault, so CAT cannot
  help; the frame-selection technique exists to steer the monitored sets
  away from it.
"""

from __future__ import annotations

import random

from repro.cache.model import LINE_SIZE, Cache


class BackgroundNoise:
    """Random line traffic from the rest of the system."""

    def __init__(
        self,
        cache: Cache,
        rate: int,
        cos: int = 1,
        region_base: int = 0x2_0000_0000,
        region_lines: int = 1 << 16,
        seed: int = 7,
    ) -> None:
        self._cache = cache
        self.rate = rate
        self.cos = cos
        self._base = region_base
        self._lines = region_lines
        self._rng = random.Random(seed)

    def step(self) -> None:
        """Touch ``rate`` random lines (call once per victim step).

        The addresses are drawn first (same RNG stream as the scalar
        loop), then pushed through the batch cache path in one call.
        """
        randrange = self._rng.randrange
        base, lines = self._base, self._lines
        addrs = [
            base + randrange(lines) * LINE_SIZE for _ in range(self.rate)
        ]
        self._cache.access_many_silent(addrs, self.cos)


class OsPollution:
    """Fixed kernel/SGX working set touched on every fault delivery."""

    def __init__(
        self,
        cache: Cache,
        n_lines: int = 48,
        cos: int = 0,
        region_base: int = 0x3_0000_0000,
        seed: int = 13,
    ) -> None:
        self._cache = cache
        self.cos = cos
        rng = random.Random(seed)
        # A fixed, scattered working set: same lines on every fault.
        self.lines = sorted(
            rng.sample(range(1 << 16), n_lines)
        )
        self._addrs = [region_base + l * LINE_SIZE for l in self.lines]

    def fault_entry(self) -> None:
        """The cache cost of delivering one page fault."""
        self._cache.access_many_silent(self._addrs, self.cos)

    def polluted_locations(self) -> set[tuple[int, int]]:
        """(slice, set) pairs this pollution lands on — what frame
        selection must avoid."""
        return {self._cache.location(a) for a in self._addrs}
