"""Intel Cache Allocation Technology (CAT) control.

"ZipChannel is the first attack to utilize Intel CAT as an offensive
technique" (contribution 4b): the attacker — who in the SGX threat model
controls the OS — partitions the LLC ways so that the class of service
shared by the attacker's probe lines and the victim's data is a *single
way*, making the victim's eviction of a primed line deterministic, while
all unrelated traffic is confined to the remaining ways.

The controller enforces Intel's architectural constraint that capacity
bitmasks are contiguous runs of set bits.
"""

from __future__ import annotations

from repro.cache.model import Cache


class CatController:
    """System-software view of CAT: program COS capacity bitmasks."""

    def __init__(self, cache: Cache) -> None:
        self._cache = cache

    @staticmethod
    def _is_contiguous(mask: int) -> bool:
        if mask == 0:
            return False
        shifted = mask >> (mask & -mask).bit_length() - 1
        return (shifted & (shifted + 1)) == 0

    def set_mask(self, cos: int, mask: int) -> None:
        """Program the capacity bitmask for a class of service.

        Args:
            cos: class-of-service id.
            mask: way bitmask (bit k = way k may be filled); must be a
                non-empty contiguous run, as real CAT requires.
        """
        ways = self._cache.config.ways
        if mask >> ways:
            raise ValueError(f"mask 0x{mask:x} exceeds {ways} ways")
        if not self._is_contiguous(mask):
            raise ValueError(f"CAT requires contiguous masks, got 0x{mask:x}")
        self._cache.cos_masks[cos] = tuple(
            w for w in range(ways) if (mask >> w) & 1
        )

    def partition_for_attack(self, attack_cos: int = 0, other_cos: int = 1) -> None:
        """The paper's offensive configuration: the attack partition
        (attacker probes + victim + OS on the attack core) gets way 0
        only; everything else gets the remaining ways."""
        ways = self._cache.config.ways
        self.set_mask(attack_cos, 0b1)
        self.set_mask(other_cos, ((1 << ways) - 1) & ~0b1)

    def reset(self) -> None:
        """No partitioning: every COS may fill every way."""
        ways = self._cache.config.ways
        self._cache.cos_masks.clear()
        self._cache.cos_masks[0] = tuple(range(ways))
