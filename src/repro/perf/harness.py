"""Timing, reporting, baseline speedups, and the CI regression gate.

Design decisions worth knowing:

* **Metrics are hashed, not just timed.**  Each bench's returned metrics
  dict is canonicalised (volatile wall-clock fields stripped) and
  sha256-hashed.  A "speedup" that changes experiment output is a bug,
  and the compare gate fails on a digest mismatch before it looks at a
  single timing.
* **The gate is machine-normalised by default.**  CI runners and dev
  laptops differ in absolute speed, so comparing raw seconds across
  machines with a 20 % tolerance would flap.  ``compare_reports``
  divides every bench's current/baseline ratio by the geometric mean of
  all ratios: a uniformly slower machine cancels out, while one bench
  regressing *relative to the others* still trips the gate.  Pass
  ``normalize=False`` (CLI ``--absolute``) for same-machine comparisons
  such as the committed ``BENCH_PR3.json`` speedup table.
* **min-of-N timing.**  Repeated runs report the minimum, the standard
  noise-robust estimator for deterministic workloads.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import math
import platform
import pstats
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro import obs
from repro.perf.benches import BENCHES, PerfBench, get_bench

SCHEMA = "repro-perf/1"

# Metrics keys that legitimately vary run to run (wall clock measured
# inside the experiment itself) and must not poison the digest.
VOLATILE_METRIC_KEYS = ("elapsed_seconds", "duration_seconds")


def metrics_digest(metrics: dict) -> str:
    """sha256 over the canonical JSON of a metrics dict, with volatile
    wall-clock fields stripped; the identity a bench's behaviour is
    pinned by."""
    stable = {
        k: v for k, v in metrics.items() if k not in VOLATILE_METRIC_KEYS
    }
    payload = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class BenchResult:
    """One bench's timing + pinned identity in one report."""

    name: str
    seconds: float
    all_seconds: list[float]
    params: dict
    seed: int
    metrics: dict
    metrics_digest: str
    baseline_seconds: Optional[float] = None
    speedup: Optional[float] = None
    metrics_match: Optional[bool] = None

    def to_dict(self) -> dict:
        out = {
            "seconds": self.seconds,
            "all_seconds": self.all_seconds,
            "params": self.params,
            "seed": self.seed,
            "metrics": self.metrics,
            "metrics_digest": self.metrics_digest,
        }
        if self.baseline_seconds is not None:
            out["baseline_seconds"] = self.baseline_seconds
            out["speedup"] = self.speedup
            out["metrics_match"] = self.metrics_match
        return out

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "BenchResult":
        return cls(
            name=name,
            seconds=float(data["seconds"]),
            all_seconds=[float(s) for s in data.get("all_seconds", [])],
            params=dict(data.get("params", {})),
            seed=int(data.get("seed", 0)),
            metrics=dict(data.get("metrics", {})),
            metrics_digest=str(data.get("metrics_digest", "")),
            baseline_seconds=data.get("baseline_seconds"),
            speedup=data.get("speedup"),
            metrics_match=data.get("metrics_match"),
        )


@dataclass
class PerfReport:
    """A ``perf run`` output: environment + per-bench results.

    ``benches`` holds the report's primary mode; a full-mode report may
    additionally carry a ``quick_benches`` section so one committed file
    (e.g. ``BENCH_PR3.json``) can serve both as the human-facing speedup
    record (full pins) and as the CI gate baseline (quick pins).
    """

    mode: str  # "full" | "quick"
    benches: dict[str, BenchResult] = field(default_factory=dict)
    quick_benches: dict[str, BenchResult] = field(default_factory=dict)
    python: str = ""
    machine: str = ""

    def section_for(self, mode: str) -> dict[str, BenchResult]:
        """The bench section comparable to a report of ``mode``."""
        if mode == self.mode:
            return self.benches
        if mode == "quick" and self.quick_benches:
            return self.quick_benches
        raise ValueError(
            f"report has no {mode!r} section (mode={self.mode!r})"
        )

    def to_dict(self) -> dict:
        out = {
            "schema": SCHEMA,
            "mode": self.mode,
            "python": self.python,
            "machine": self.machine,
            "benches": {
                name: result.to_dict()
                for name, result in sorted(self.benches.items())
            },
        }
        if self.quick_benches:
            out["quick_benches"] = {
                name: result.to_dict()
                for name, result in sorted(self.quick_benches.items())
            }
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "PerfReport":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} report (schema={data.get('schema')!r})"
            )
        report = cls(
            mode=str(data.get("mode", "full")),
            python=str(data.get("python", "")),
            machine=str(data.get("machine", "")),
        )
        for name, payload in data.get("benches", {}).items():
            report.benches[name] = BenchResult.from_dict(name, payload)
        for name, payload in data.get("quick_benches", {}).items():
            report.quick_benches[name] = BenchResult.from_dict(name, payload)
        return report

    def summary(self) -> str:
        lines = [f"{'bench':<20} {'seconds':>10} {'speedup':>9}  metrics"]
        for name, r in sorted(self.benches.items()):
            speed = f"{r.speedup:.2f}x" if r.speedup is not None else "-"
            match = (
                "identical"
                if r.metrics_match
                else ("CHANGED" if r.metrics_match is False else "")
            )
            lines.append(
                f"{name:<20} {r.seconds:>10.3f} {speed:>9}  {match}"
            )
        return "\n".join(lines)


def load_report(path: str) -> PerfReport:
    """Read a ``perf run`` JSON file back into a report."""
    with open(path, "r", encoding="utf-8") as handle:
        return PerfReport.from_dict(json.load(handle))


def _time_bench(
    bench: PerfBench, quick: bool, repeats: Optional[int]
) -> tuple[list[float], dict]:
    n = repeats or (bench.quick_repeats if quick else bench.repeats)
    timings: list[float] = []
    metrics: dict = {}
    for _ in range(max(1, n)):
        start = time.perf_counter()
        metrics = bench.run(quick=quick)
        timings.append(time.perf_counter() - start)
    return timings, metrics


def run_benches(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
    on_event: Optional[Callable[[str], None]] = None,
) -> PerfReport:
    """Time the named benches (default: the whole catalogue)."""
    benches: Iterable[PerfBench] = (
        BENCHES if not names else [get_bench(name) for name in names]
    )
    report = PerfReport(
        mode="quick" if quick else "full",
        python=platform.python_version(),
        machine=f"{platform.system()}-{platform.machine()}",
    )
    for bench in benches:
        if on_event:
            on_event(f"[perf] {bench.name} ({report.mode}) ...")
        with obs.span("perf.bench", bench=bench.name, mode=report.mode):
            timings, metrics = _time_bench(bench, quick, repeats)
        result = BenchResult(
            name=bench.name,
            seconds=min(timings),
            all_seconds=[round(t, 6) for t in timings],
            params=bench.resolved_params(quick),
            seed=bench.seed,
            metrics=metrics,
            metrics_digest=metrics_digest(metrics),
        )
        report.benches[bench.name] = result
        if on_event:
            on_event(f"[perf] {bench.name}: {result.seconds:.3f}s")
    return report


def merge_reports(existing: PerfReport, new: PerfReport) -> PerfReport:
    """Fold a fresh run into an existing report file, per bench.

    Full-mode results land in the primary section of a full report; a
    quick run against a full report lands in its ``quick_benches``
    section, so one committed file carries both pins.  Benches absent
    from the new run are kept as-is.
    """
    if existing.mode == "full" and new.mode == "quick":
        existing.quick_benches.update(new.benches)
        return existing
    if existing.mode == "quick" and new.mode == "full":
        # The full run takes over as primary; keep old quick pins.
        new.quick_benches = dict(existing.benches)
        return new
    existing.benches.update(new.benches)
    existing.quick_benches.update(new.quick_benches)
    existing.python = new.python or existing.python
    existing.machine = new.machine or existing.machine
    return existing


def apply_baseline(report: PerfReport, baseline: PerfReport) -> PerfReport:
    """Annotate ``report`` with per-bench speedups vs ``baseline``.

    Speedups are only meaningful same-machine, same-pin: the baseline
    section matching the report's mode is used (a baseline without one
    is refused).
    """
    section = baseline.section_for(report.mode)
    for name, result in report.benches.items():
        base = section.get(name)
        if base is None:
            continue
        result.baseline_seconds = base.seconds
        result.speedup = base.seconds / result.seconds if result.seconds else None
        same_pin = base.params == result.params and base.seed == result.seed
        result.metrics_match = (
            base.metrics_digest == result.metrics_digest if same_pin else None
        )
    return report


@dataclass
class ComparisonRow:
    name: str
    current_seconds: float
    baseline_seconds: float
    ratio: float  # current / baseline (>1 = slower)
    normalized_ratio: float
    pin_matches: bool
    digest_matches: Optional[bool]  # None when pins differ


@dataclass
class ComparisonResult:
    """Outcome of the regression gate."""

    rows: list[ComparisonRow]
    tolerance: float
    normalized: bool
    regressions: list[str] = field(default_factory=list)
    digest_failures: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.digest_failures

    def summary(self) -> str:
        kind = "normalized" if self.normalized else "absolute"
        lines = [
            f"perf compare ({kind} ratios, tolerance "
            f"{self.tolerance * 100:.0f}%)",
            f"{'bench':<20} {'current':>10} {'baseline':>10} "
            f"{'ratio':>7} {'norm':>7}  verdict",
        ]
        for row in self.rows:
            if row.name in self.digest_failures:
                verdict = "METRICS CHANGED"
            elif row.name in self.regressions:
                verdict = "REGRESSION"
            else:
                verdict = "ok"
            lines.append(
                f"{row.name:<20} {row.current_seconds:>10.3f} "
                f"{row.baseline_seconds:>10.3f} {row.ratio:>7.2f} "
                f"{row.normalized_ratio:>7.2f}  {verdict}"
            )
        for name in self.missing:
            lines.append(f"{name:<20} (no baseline entry; skipped)")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def compare_reports(
    current: PerfReport,
    baseline: PerfReport,
    tolerance: float = 0.2,
    normalize: bool = True,
) -> ComparisonResult:
    """The regression gate: is ``current`` no worse than ``baseline``?

    Fails on (a) any bench whose metrics digest changed under an
    identical pin — a correctness regression — and (b) any bench whose
    (machine-normalised) time ratio exceeds ``1 + tolerance``.
    Normalisation needs at least three common benches to estimate the
    machine-speed scale; with fewer, raw ratios are used.
    """
    section = baseline.section_for(current.mode)
    common = [name for name in current.benches if name in section]
    missing = [name for name in current.benches if name not in section]
    ratios = {}
    for name in common:
        cur, base = current.benches[name], section[name]
        same_pin = cur.params == base.params and cur.seed == base.seed
        if same_pin and base.seconds > 0 and cur.seconds > 0:
            ratios[name] = cur.seconds / base.seconds
    use_norm = normalize and len(ratios) >= 3
    if use_norm:
        log_sum = sum(math.log(r) for r in ratios.values())
        scale = math.exp(log_sum / len(ratios))
    else:
        scale = 1.0

    result = ComparisonResult(
        rows=[], tolerance=tolerance, normalized=use_norm, missing=missing
    )
    for name in sorted(common):
        cur, base = current.benches[name], section[name]
        pin = cur.params == base.params and cur.seed == base.seed
        if not pin:
            # Different workload: times are incomparable; flag only.
            result.missing.append(f"{name} (pin changed)")
            continue
        ratio = ratios.get(name, float("inf"))
        norm_ratio = ratio / scale
        digest = cur.metrics_digest == base.metrics_digest
        result.rows.append(
            ComparisonRow(
                name=name,
                current_seconds=cur.seconds,
                baseline_seconds=base.seconds,
                ratio=ratio,
                normalized_ratio=norm_ratio,
                pin_matches=pin,
                digest_matches=digest,
            )
        )
        if digest is False:
            result.digest_failures.append(name)
        if norm_ratio > 1.0 + tolerance:
            result.regressions.append(name)
    return result


def profile_bench(
    name: str,
    quick: bool = False,
    sort: str = "cumulative",
    top: int = 30,
    experiment: Optional[str] = None,
    params: Optional[dict] = None,
    seed: int = 0,
) -> str:
    """cProfile one bench (or any raw experiment id) and return the
    formatted stats table."""
    if experiment is not None:
        from repro.campaign.experiments import get_experiment

        fn = get_experiment(experiment)
        run = lambda: fn(params or {}, seed)  # noqa: E731
        label = f"experiment {experiment!r}"
    else:
        bench = get_bench(name)
        run = lambda: bench.run(quick=quick)  # noqa: E731
        label = f"bench {bench.name!r} ({'quick' if quick else 'full'})"

    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats(sort).print_stats(top)
    return f"profile of {label}\n{out.getvalue()}"


def site_access_profile(
    target: str, data: bytes, max_events: int = 2_000_000
) -> list[dict]:
    """Per-site access counts for a named analysis target.

    Runs the target once under an ``ADDRESS_ONLY``
    :class:`~repro.exec.context.TracingContext` and aggregates its
    memory accesses by ``site`` — the same source-location labels the
    gadget reports and ``repro mitigate`` plans key on, so a hot site
    here is directly cross-referenceable against a gadget scan.

    Each row: ``{site, array, accesses, tainted, share}`` where
    ``share`` is this site's fraction of all recorded accesses and
    ``tainted`` counts accesses whose address carried input taint.
    Rows come back hottest-first.
    """
    from repro.core.taintchannel.tool import target_for
    from repro.exec.context import InstrumentationTier, TracingContext

    ctx = TracingContext(
        tier=InstrumentationTier.ADDRESS_ONLY, max_events=max_events
    )
    target_for(target, data)(ctx)
    rows: dict[str, dict] = {}
    total = 0
    for access in ctx.memory_accesses():
        total += 1
        row = rows.get(access.site)
        if row is None:
            row = rows[access.site] = {
                "site": access.site,
                "array": access.array,
                "accesses": 0,
                "tainted": 0,
            }
        row["accesses"] += 1
        if access.addr_taint:
            row["tainted"] += 1
    out = sorted(rows.values(), key=lambda r: (-r["accesses"], r["site"]))
    for row in out:
        row["share"] = row["accesses"] / total if total else 0.0
    return out


def render_site_profile(
    rows: Sequence[dict], target: str, input_len: int, top: int = 30
) -> str:
    """The hot-table view of :func:`site_access_profile`."""
    total = sum(r["accesses"] for r in rows)
    lines = [
        f"site access profile of target {target!r} "
        f"({input_len}-byte input, {total} accesses, {len(rows)} sites)",
        f"{'site':<40} {'array':<14} {'accesses':>9} "
        f"{'tainted':>8} {'share':>7}",
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['site']:<40} {row['array']:<14} {row['accesses']:>9} "
            f"{row['tainted']:>8} {row['share'] * 100:>6.1f}%"
        )
    if len(rows) > top:
        lines.append(f"... and {len(rows) - top} more sites")
    return "\n".join(lines)
