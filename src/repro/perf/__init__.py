"""Performance regression harness over the experiment registry.

The ROADMAP's north star is "as fast as the hardware allows", but a
speed claim without a recorded number is folklore.  This package makes
wall time a tracked artifact, the way :mod:`repro.campaign` made
experiment metrics one:

* :mod:`repro.perf.benches` — the bench catalogue: a named, pinned
  (experiment, params, seed) triple per bench, each with a ``--quick``
  variant small enough for CI.
* :mod:`repro.perf.harness` — runs benches under ``time.perf_counter``,
  hashes their metrics (so a speedup that changes results is caught as
  loudly as a slowdown), computes speedups against a recorded baseline
  file, and compares two reports as a CI regression gate.

CLI::

    python -m repro perf run --out BENCH_PR3.json \
        --baseline benchmarks/perf_baseline.json
    python -m repro perf run --quick --out bench_ci.json
    python -m repro perf compare bench_ci.json \
        --baseline BENCH_PR3.json --tolerance 0.2
    python -m repro perf profile sec5e_attack --quick
"""

from repro.perf.benches import PerfBench, available_benches, get_bench
from repro.perf.harness import (
    BenchResult,
    ComparisonResult,
    PerfReport,
    apply_baseline,
    compare_reports,
    load_report,
    merge_reports,
    metrics_digest,
    profile_bench,
    render_site_profile,
    run_benches,
    site_access_profile,
)

__all__ = [
    "PerfBench",
    "available_benches",
    "get_bench",
    "BenchResult",
    "ComparisonResult",
    "PerfReport",
    "apply_baseline",
    "compare_reports",
    "load_report",
    "merge_reports",
    "metrics_digest",
    "profile_bench",
    "render_site_profile",
    "run_benches",
    "site_access_profile",
]
