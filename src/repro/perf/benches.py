"""The bench catalogue: what ``repro perf`` times.

A bench is a pinned invocation of a registered campaign experiment
(:mod:`repro.campaign.experiments`): fixed params, fixed seed.  Pinning
matters twice over — wall times are only comparable across commits when
the workload is identical, and the harness hashes the returned metrics
so any behaviour change under the same pin is flagged as a correctness
regression, not silently timed.

Every bench carries a ``quick_params`` variant sized for CI (a few
seconds total for the whole quick suite) next to the full variant used
for the committed ``BENCH_*.json`` numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.experiments import get_experiment


@dataclass(frozen=True)
class PerfBench:
    """One named, pinned perf workload.

    Args:
        name: stable bench id (keys the JSON reports).
        experiment: registered experiment id to run.
        params: full-mode parameter dict.
        quick_params: overrides applied on top of ``params`` in quick
            mode (CI smoke).
        seed: the experiment seed (pinned; metrics must be reproducible).
        repeats: full-mode timing repetitions (min is reported).
        quick_repeats: quick-mode repetitions.
        note: one line on what the bench exercises.
    """

    name: str
    experiment: str
    params: dict = field(default_factory=dict)
    quick_params: dict = field(default_factory=dict)
    seed: int = 0
    repeats: int = 1
    quick_repeats: int = 1
    note: str = ""

    def resolved_params(self, quick: bool) -> dict:
        merged = dict(self.params)
        if quick:
            merged.update(self.quick_params)
        return merged

    def run(self, quick: bool = False) -> dict:
        """Execute the pinned experiment once; returns its metrics."""
        fn = get_experiment(self.experiment)
        return fn(self.resolved_params(quick), self.seed)


# The catalogue.  Names are load-bearing: committed BENCH_*.json files
# and the CI gate key on them, so renaming one orphans its baseline.
BENCHES: tuple[PerfBench, ...] = (
    PerfBench(
        name="sec5e_attack",
        experiment="sgx_attack",
        params={"size": 4000},
        quick_params={"size": 400},
        seed=55,
        note="Section V-E end-to-end SGX extraction (cache + memsys hot path)",
    ),
    PerfBench(
        name="fig7_dataset",
        experiment="fingerprint_dataset",
        params={"corpus": "brotli", "traces": 10},
        quick_params={"traces": 2, "max_file_bytes": 1200},
        seed=77,
        note="Fig. 7 fingerprint dataset build (native blocksort + capture)",
    ),
    PerfBench(
        name="survey_recovery",
        experiment="survey_recovery",
        params={"size": 600},
        quick_params={"size": 200},
        seed=11,
        note="Section IV three-compressor recovery survey (tracing substrate)",
    ),
    PerfBench(
        name="taintchannel_zlib",
        experiment="taintchannel_scan",
        params={"target": "zlib", "size": 600, "input_kind": "lowercase"},
        quick_params={"size": 250},
        seed=3,
        repeats=2,
        note="TaintChannel gadget scan of deflate (taint algebra hot path)",
    ),
    PerfBench(
        name="taintchannel_lzw",
        experiment="taintchannel_scan",
        params={"target": "lzw", "size": 500},
        quick_params={"size": 200},
        seed=3,
        repeats=2,
        note="TaintChannel gadget scan of LZW (taint algebra hot path)",
    ),
    PerfBench(
        name="mitigate_lzw",
        experiment="mitigation_synthesis",
        params={"target": "lzw", "size": 150},
        quick_params={"size": 80},
        seed=7,
        note="mitigation synthesis loop: scan, plan, apply, re-meter (LZW)",
    ),
    PerfBench(
        name="lzw_recovery",
        experiment="lzw_recovery",
        params={"size": 400, "noise": 0.02},
        quick_params={"size": 150},
        seed=9,
        repeats=2,
        note="noisy-channel LZW recovery (tracing + recovery search)",
    ),
    # The replay pairs share every param except `mode`, and the
    # experiments keep `mode` out of their metrics — so the harness
    # digest pins the columnar decoder to the object decoder while the
    # wall-time ratio records the speedup.  The capture happens once per
    # process (see experiments._bench_store); repeats > 1 so the min
    # discards the capture-bearing first run.
    PerfBench(
        name="survey_replay_object",
        experiment="survey_replay",
        params={"size": 2000, "mode": "object"},
        quick_params={"size": 300},
        seed=11,
        repeats=3,
        quick_repeats=2,
        note="Section IV survey line streams from store (object decode)",
    ),
    PerfBench(
        name="survey_replay_array",
        experiment="survey_replay",
        params={"size": 2000, "mode": "array"},
        quick_params={"size": 300},
        seed=11,
        repeats=3,
        quick_repeats=2,
        note="Section IV survey line streams from store (columnar decode)",
    ),
    PerfBench(
        name="fig7_replay_object",
        experiment="fig7_replay",
        params={"corpus": "brotli", "traces": 10, "mode": "object"},
        quick_params={"traces": 2, "max_file_bytes": 1200},
        seed=77,
        repeats=3,
        quick_repeats=2,
        note="Fig. 7 dataset from stored fingerprints (object decode)",
    ),
    PerfBench(
        name="fig7_replay_array",
        experiment="fig7_replay",
        params={"corpus": "brotli", "traces": 10, "mode": "array"},
        quick_params={"traces": 2, "max_file_bytes": 1200},
        seed=77,
        repeats=3,
        quick_repeats=2,
        note="Fig. 7 dataset from stored fingerprints (run-domain pooling)",
    ),
    PerfBench(
        name="access_many_probe",
        experiment="probe_sweep",
        params={"rounds": 200, "locations": 256, "noise_rate": 64},
        quick_params={"rounds": 60, "locations": 96},
        seed=21,
        repeats=2,
        note="Prime+Probe rounds under noise (batched access_many paths)",
    ),
)

_BY_NAME = {bench.name: bench for bench in BENCHES}


def available_benches() -> list[str]:
    """Names of all catalogued benches, in catalogue order."""
    return [bench.name for bench in BENCHES]


def get_bench(name: str) -> PerfBench:
    """Look up a bench; KeyError lists what exists."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown bench {name!r}; available: {available_benches()}"
        ) from None
