"""Nearest-centroid baseline classifier.

A sanity baseline for the fingerprinting experiments: if traces are
separable at all, class means separate them; the MLP should do at least
as well.  Keeping a trivial baseline around guards against the DNN
"learning" nothing but majority class.
"""

from __future__ import annotations

import numpy as np


class NearestCentroidClassifier:
    """Classify by Euclidean distance to per-class mean traces."""

    def __init__(self) -> None:
        self.centroids: np.ndarray | None = None
        self.classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NearestCentroidClassifier":
        self.classes = np.unique(y)
        self.centroids = np.stack(
            [x[y == c].mean(axis=0) for c in self.classes]
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centroids is None or self.classes is None:
            raise RuntimeError("fit() first")
        # (n, k) distance matrix without materialising differences.
        d2 = (
            (x**2).sum(axis=1, keepdims=True)
            - 2 * x @ self.centroids.T
            + (self.centroids**2).sum(axis=1)
        )
        return self.classes[d2.argmin(axis=1)]

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        if len(x) == 0:
            return 0.0
        return float((self.predict(x) == y).mean())
