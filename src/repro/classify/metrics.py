"""Dataset splitting and confusion matrices (Figs. 7 and 8)."""

from __future__ import annotations

import numpy as np


def split_dataset(
    x: np.ndarray,
    y: np.ndarray,
    val_fraction: float = 0.1,
    test_fraction: float = 0.1,
    seed: int = 0,
):
    """Shuffled train/eval/test split (the paper's 90/10/10-style split:
    "network training, mid-training evaluation and the final
    evaluation")."""
    n = len(x)
    order = np.random.default_rng(seed).permutation(n)
    n_test = max(1, int(n * test_fraction))
    n_val = max(1, int(n * val_fraction))
    test, val, train = (
        order[:n_test],
        order[n_test : n_test + n_val],
        order[n_test + n_val :],
    )
    return (
        (x[train], y[train]),
        (x[val], y[val]),
        (x[test], y[test]),
    )


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Column-normalised confusion matrix in the paper's layout: columns
    are the files the classifier was challenged with, rows its outputs;
    a perfect classifier has 1.0 down the diagonal."""
    counts = np.zeros((n_classes, n_classes), dtype=float)
    for t, p in zip(y_true, y_pred):
        counts[p, t] += 1.0
    col_sums = counts.sum(axis=0, keepdims=True)
    col_sums[col_sums == 0] = 1.0
    return counts / col_sums


def diagonal_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Per-class accuracy: the matrix diagonal."""
    return np.diagonal(matrix).copy()


def render_confusion(
    matrix: np.ndarray, labels: list[str], max_label: int = 18
) -> str:
    """Text rendering of a confusion matrix, Fig. 7-style."""
    names = [l[:max_label] for l in labels]
    width = max(len(n) for n in names) + 1
    cell = 6
    lines = [
        " " * width + "".join(f"{n[:cell - 1]:>{cell}}" for n in names),
    ]
    for i, name in enumerate(names):
        row = "".join(f"{matrix[i, j]:>{cell}.2f}" for j in range(len(names)))
        lines.append(f"{name:<{width}}" + row)
    return "\n".join(lines)
