"""A small multi-layer perceptron with Adam, in plain numpy.

One hidden ReLU layer, softmax cross-entropy output, minibatch Adam.
Deliberately boring: the attack result must not depend on classifier
exotica.
"""

from __future__ import annotations

import numpy as np

from repro import obs

_log = obs.get_logger("classify.mlp")


class MLPClassifier:
    """ReLU MLP trained with minibatch Adam on cross-entropy."""

    def __init__(
        self,
        n_inputs: int,
        n_classes: int,
        hidden: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / n_inputs)
        scale2 = np.sqrt(2.0 / hidden)
        self.params = {
            "W1": rng.normal(0, scale1, (n_inputs, hidden)),
            "b1": np.zeros(hidden),
            "W2": rng.normal(0, scale2, (hidden, n_classes)),
            "b2": np.zeros(n_classes),
        }
        self.lr = lr
        self._adam_m = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._adam_v = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._adam_t = 0
        self._rng = rng
        self.n_classes = n_classes

    # -- forward / backward -----------------------------------------------
    def _forward(self, x: np.ndarray):
        z1 = x @ self.params["W1"] + self.params["b1"]
        a1 = np.maximum(z1, 0.0)
        logits = a1 @ self.params["W2"] + self.params["b2"]
        return z1, a1, logits

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def _step(self, x: np.ndarray, y: np.ndarray) -> float:
        z1, a1, logits = self._forward(x)
        probs = self._softmax(logits)
        n = len(y)
        loss = -np.log(probs[np.arange(n), y] + 1e-12).mean()

        dlogits = probs
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n
        grads = {
            "W2": a1.T @ dlogits,
            "b2": dlogits.sum(axis=0),
        }
        da1 = dlogits @ self.params["W2"].T
        dz1 = da1 * (z1 > 0)
        grads["W1"] = x.T @ dz1
        grads["b1"] = dz1.sum(axis=0)

        self._adam_t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for key, grad in grads.items():
            self._adam_m[key] = beta1 * self._adam_m[key] + (1 - beta1) * grad
            self._adam_v[key] = beta2 * self._adam_v[key] + (1 - beta2) * grad**2
            m_hat = self._adam_m[key] / (1 - beta1**self._adam_t)
            v_hat = self._adam_v[key] / (1 - beta2**self._adam_t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
        return float(loss)

    # -- public API ---------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 32,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        verbose: bool = False,
    ) -> list[float]:
        """Train; returns per-epoch mean training loss.  Validation data,
        when given, is used for mid-training accuracy reporting only (the
        paper's evaluation split).

        ``verbose`` routes per-epoch progress through the
        :mod:`repro.obs` logger — never stdout, which campaign workers
        and the CLI parse — so training is silent unless observability
        is enabled."""
        history = []
        n = len(x)
        progress = verbose and x_val is not None and obs.enabled()
        for epoch in range(epochs):
            order = self._rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                losses.append(self._step(x[batch], y[batch]))
            history.append(float(np.mean(losses)))
            if progress:
                acc = self.accuracy(x_val, y_val)
                _log.info(
                    f"epoch {epoch}: loss {history[-1]:.4f} "
                    f"val acc {acc:.3f}",
                    epoch=epoch,
                    loss=history[-1],
                    val_accuracy=acc,
                )
        return history

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        _, _, logits = self._forward(x)
        return self._softmax(logits)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        if len(x) == 0:
            return 0.0
        return float((self.predict(x) == y).mean())
