"""Trace classification for the fingerprinting attack.

The paper trains a PyTorch DNN on Google Colab; the substitution
(DESIGN.md) is a from-scratch numpy multi-layer perceptron with Adam —
the reproduced result is the *separability of the traces*, not the
framework.  :mod:`repro.classify.metrics` provides the train/eval/test
split and the Fig. 7/8 confusion matrices.
"""

from repro.classify.mlp import MLPClassifier
from repro.classify.baseline import NearestCentroidClassifier
from repro.classify.metrics import (
    confusion_matrix,
    render_confusion,
    split_dataset,
)

__all__ = [
    "MLPClassifier",
    "NearestCentroidClassifier",
    "confusion_matrix",
    "render_confusion",
    "split_dataset",
]
