"""Simulated SGX enclave execution.

An :class:`Enclave` is an execution context whose array accesses go
through the attacker-controlled page tables
(:class:`repro.memsys.AddressSpace`) and the shared cache
(:class:`repro.cache.Cache`).  Page faults are delivered synchronously to
the attacker's handler — the controlled channel of Xu et al. that the
paper builds its single-stepping on — with fault addresses masked to
page granularity exactly as SGX guarantees.
"""

from repro.sgx.enclave import Enclave, EnclaveKilled

__all__ = ["Enclave", "EnclaveKilled"]
