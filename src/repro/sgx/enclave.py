"""The enclave execution context."""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.model import Cache
from repro.exec.arrays import TArray
from repro.exec.context import ExecutionContext
from repro.memsys.paging import AddressSpace, PageFault
from repro.taint.value import value_of

# Enclave virtual layout starts here; arrays are page-aligned by default.
_ENCLAVE_BASE = 0x7F90_0000_0000
_GUARD = 0x2000

FaultHandler = Callable[[PageFault], None]
AccessHook = Callable[[int, str], None]


class EnclaveKilled(RuntimeError):
    """A fault was not resolved by the handler (or no handler is set)."""


class _EnclaveArray(TArray):
    """Array whose element accesses translate and touch the cache."""

    __slots__ = ("enclave",)

    def __init__(self, enclave: "Enclave", *args) -> None:
        super().__init__(*args)
        self.enclave = enclave

    def get(self, index, site: str = ""):
        i = value_of(index)
        self._check(i)
        self.enclave.touch(self.address_of(i), "read")
        return self.values[i]

    def set(self, index, value, site: str = "") -> None:
        i = value_of(index)
        self._check(i)
        self.enclave.touch(self.address_of(i), "write")
        self.values[i] = value

    def add(self, index, delta, site: str = "") -> None:
        i = value_of(index)
        self._check(i)
        self.enclave.touch(self.address_of(i), "update")
        self.values[i] = self.values[i] + delta


class Enclave(ExecutionContext):
    """Victim execution on the simulated memory system.

    Args:
        space: the (attacker-controlled) page tables.
        cache: the shared LLC.
        cos: class of service for the victim's fills (the attack
            partition when CAT is configured).
        env_hook: called after every completed victim access — this is
            where the simulation environment steps concurrent background
            noise; it is *not* an attacker capability.
        max_fault_retries: a single access faulting more than this many
            times means the handler is not making progress.
    """

    def __init__(
        self,
        space: AddressSpace,
        cache: Cache,
        cos: int = 0,
        env_hook: Optional[AccessHook] = None,
        max_fault_retries: int = 8,
    ) -> None:
        self.space = space
        self.cache = cache
        self.cos = cos
        self.env_hook = env_hook
        self.fault_handler: Optional[FaultHandler] = None
        self.max_fault_retries = max_fault_retries
        self._next_base = _ENCLAVE_BASE
        self.arrays: dict[str, TArray] = {}
        self.access_count = 0

    # -- the access path the attack observes -----------------------------
    def touch(self, vaddr: int, kind: str) -> int:
        """One victim memory access: translate (delivering faults to the
        attacker until permissions allow it), then access the cache."""
        for _ in range(self.max_fault_retries):
            try:
                paddr = self.space.translate(vaddr, kind)
            except PageFault as fault:
                if self.fault_handler is None:
                    raise EnclaveKilled(str(fault)) from fault
                self.fault_handler(fault)
                continue
            self.cache.access_silent(paddr, self.cos)
            self.access_count += 1
            if self.env_hook is not None:
                self.env_hook(paddr, kind)
            return paddr
        raise EnclaveKilled(
            f"access at 0x{vaddr:x} still faulting after "
            f"{self.max_fault_retries} handler invocations"
        )

    # -- ExecutionContext API ---------------------------------------------
    def input_bytes(self, data: bytes, source: str = "input") -> list[int]:
        return list(data)

    def array(
        self,
        name: str,
        length: int,
        elem_size: int = 1,
        init: int = 0,
        align: int = 4096,
        misalign: int = 0,
    ) -> TArray:
        size = length * elem_size
        base = -(-self._next_base // align) * align + misalign
        self._next_base = base + size + _GUARD
        self.space.map_range(base, size)
        arr = _EnclaveArray(self, name, length, elem_size, base, init)
        self.arrays[name] = arr
        return arr
