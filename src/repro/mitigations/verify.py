"""Verify an applied mitigation plan: leakage before/after, and the bill.

``verify_mitigation`` closes the loop the planner opened:

1. **Before** — scan the vulnerable kernel with TaintChannel, build the
   plan, and meter the primary gadget's leakage with the
   :mod:`repro.diag` machinery (Section IV decoder + empirical mutual
   information).
2. **Apply** — instantiate the patched kernel
   (:func:`repro.mitigations.apply.build_kernel`).
3. **After** — run the patched kernel once under tracing with untainted
   accesses recorded (the cover traffic is untainted by construction —
   that is the point), re-group gadgets to find *residual* tainted
   sites, and feed the metered line stream back through the identical
   diag decoder.  Because every mitigated access expands into a fixed
   per-access burst of cover touches, the stream is first reduced to
   one observation per logical access (the burst's last line) so the
   decoders see the same observation count as on the vulnerable kernel;
   for mitigated sites the reduced stream is a constant and the MI
   collapses to ~0.
4. **Price it** — access-count overhead from the traces, wall-clock
   from untraced native runs (reported as volatile ``elapsed_seconds``
   so perf pinning ignores it).

Output equality against the vulnerable kernel and decodability with the
stock decompressors are asserted along the way (skipped for
Debreach-guarded kernels, whose output legitimately differs; those are
checked for span-disjoint leakage instead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.core.taintchannel.tool import TaintChannel, target_for
from repro.diag.leakage import GadgetLeakage
from repro.exec.context import InstrumentationTier, TracingContext
from repro.exec.events import MemoryAccess
from repro.mitigations.apply import (
    DEFAULT_HASH_BITS,
    MitigatedKernel,
    build_kernel,
)
from repro.mitigations.plan import MitigationPlan, build_plan

VERIFY_TARGETS = ("zlib", "lzw", "bzip2")


def _meter_filter(target: str) -> tuple[tuple[str, ...], Optional[str]]:
    """(sites, kind) of the primary gadget — the same filter the diag
    meter applies to the vulnerable kernel."""
    if target == "zlib":
        from repro.compression.lz77 import SITE_HEAD

        return (SITE_HEAD,), "write"
    if target == "lzw":
        from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY

        return (SITE_PRIMARY, SITE_SECONDARY), "read"
    if target == "bzip2":
        from repro.compression.bzip2 import SITE_FTAB

        return (SITE_FTAB,), None
    raise ValueError(
        f"unknown target {target!r}; choose from {VERIFY_TARGETS}"
    )


def _metered_lines(ctx: TracingContext, target: str) -> list[int]:
    """The attacker's line stream over *all* recorded accesses.

    ``ctx.tainted_accesses()`` would drop the untainted cover traffic;
    the channel does not, so neither does the meter.
    """
    sites, kind = _meter_filter(target)
    return [
        e.address >> 6
        for e in ctx.events
        if isinstance(e, MemoryAccess)
        and e.site in sites
        and (kind is None or e.kind == kind)
    ]


def _burst_len(target: str, kernel: MitigatedKernel) -> int:
    """Metered events per logical access on the patched kernel.

    Derived from the wrapper actually constructed during the run: every
    cover wrapper touches one element per covered line, and bzip2's
    ``ftab[j]++`` is a read+write pair per line under the any-kind
    filter.
    """
    from repro.mitigations.apply import _cover_count

    sites, _kind = _meter_filter(target)
    wrapper = next(
        (kernel.wrappers[s] for s in sites if s in kernel.wrappers), None
    )
    if wrapper is None:
        return 1
    cover = _cover_count(wrapper)
    return 2 * cover if target == "bzip2" else cover


def _reduce_bursts(lines: list[int], burst: int) -> list[int]:
    """One observation per logical access: the burst's last line (the
    cover sweeps run in ascending line order, so the last touch is the
    input-independent top of the sweep)."""
    if burst <= 1:
        return lines
    if len(lines) % burst:
        raise ValueError(
            f"metered stream ({len(lines)} lines) is not a whole number "
            f"of {burst}-line bursts; the burst model is wrong"
        )
    return lines[burst - 1 :: burst]


def _count_accesses(ctx: TracingContext) -> int:
    return (
        sum(1 for e in ctx.events if isinstance(e, MemoryAccess))
        + ctx.plain_accesses
    )


def _decode(target: str, blob: bytes) -> bytes:
    if target == "zlib":
        from repro.compression.lz77 import deflate_decompress

        return deflate_decompress(blob)
    if target == "lzw":
        from repro.compression.lzw import lzw_decompress

        return lzw_decompress(blob)
    from repro.compression.bzip2 import bzip2_decompress

    return bzip2_decompress(blob)


@dataclass
class MitigationReport:
    """The before/after verdict for one target/input pair."""

    target: str
    size: int
    input_kind: str
    seed: int
    plan: MitigationPlan
    before: GadgetLeakage
    after: GadgetLeakage
    output_equal: bool
    decodable: bool
    guarded: bool
    guard_ok: bool  # guarded kernels: leaked tags disjoint from spans
    residual_sites: list[str]  # mitigated sites still tainted after
    leftover_sites: list[str]  # sites the plan chose not to cover
    accesses_before: int
    accesses_after: int
    elapsed_seconds: dict = field(default_factory=dict)

    @property
    def access_overhead(self) -> float:
        if not self.accesses_before:
            return 0.0
        return self.accesses_after / self.accesses_before

    def metric_dict(self) -> dict:
        out = {
            "planned_sites": len(self.plan.sites),
            "mitigated_sites": len(self.plan.mitigated_sites()),
            "residual_gadgets": len(self.residual_sites),
            "leftover_gadgets": len(self.leftover_sites),
            "output_equal": int(self.output_equal),
            "decodable": int(self.decodable),
            "guarded": int(self.guarded),
            "guard_ok": int(self.guard_ok),
            "accesses_before": self.accesses_before,
            "accesses_after": self.accesses_after,
            "access_overhead": self.access_overhead,
        }
        out.update(self.before.metric_dict("before."))
        out.update(self.after.metric_dict("after."))
        return out

    def summary(self) -> str:
        lines = [
            f"Mitigation verification — {self.target}, {self.size} bytes "
            f"({self.input_kind}, seed {self.seed})",
            self.plan.summary(),
            "",
            f"{'':24}{'before':>12}{'after':>12}",
        ]
        for label, attr in (
            ("mi (bits/byte)", "mi_bits_per_byte"),
            ("byte accuracy", "byte_accuracy"),
            ("bit accuracy", "bit_accuracy"),
            ("recovered fraction", "recovered_fraction"),
            ("observations", "n_observations"),
        ):
            b = getattr(self.before, attr)
            a = getattr(self.after, attr)
            lines.append(f"{label:24}{b:>12.4f}{a:>12.4f}")
        lines += [
            "",
            f"output byte-identical: {self.output_equal}   "
            f"stock-decodable: {self.decodable}",
            f"residual tainted sites (mitigated): "
            f"{self.residual_sites or 'none'}",
            f"uncovered sites (plan said none/guard): "
            f"{self.leftover_sites or 'none'}",
            f"memory accesses: {self.accesses_before} -> "
            f"{self.accesses_after} "
            f"({self.access_overhead:.1f}x overhead)",
        ]
        if self.guarded:
            lines.append(
                f"guard check (leaked tags outside secret spans): "
                f"{'ok' if self.guard_ok else 'FAILED'}"
            )
        wall = self.elapsed_seconds
        if wall:
            lines.append(
                f"wall clock (native): {wall['vulnerable']:.4f}s -> "
                f"{wall['mitigated']:.4f}s"
            )
        return "\n".join(lines)


def survey_plan(
    target: str,
    data: bytes,
    secret_spans: Optional[list[tuple[int, int]]] = None,
    max_events: int = 4_000_000,
) -> tuple[MitigationPlan, "object"]:
    """Scan the vulnerable kernel and derive its plan.

    Returns ``(plan, analysis_result)``; the result is kept so callers
    can render individual gadget reports alongside the plan.
    """
    with obs.span("mitigate.survey", target=target, size=len(data)):
        tc = TaintChannel(max_events=max_events)
        result = tc.analyze(target, target_for(target, data))
        plan = build_plan(result, secret_spans=secret_spans)
    obs.counter_add(
        "mitigate.sites_planned", len(plan.mitigated_sites())
    )
    return plan, result


def verify_mitigation(
    target: str,
    size: int = 120,
    input_kind: Optional[str] = None,
    seed: int = 7,
    hash_bits: int = DEFAULT_HASH_BITS,
    secret_spans: Optional[list[tuple[int, int]]] = None,
    plan: Optional[MitigationPlan] = None,
    max_events: int = 4_000_000,
) -> MitigationReport:
    """The full survey -> apply -> re-meter loop for one target."""
    from repro.campaign.experiments import make_input
    from repro.diag.leakage import leakage_from_lines, measure_gadget_live
    from repro.exec.context import NativeContext
    from repro.traces.capture import default_input_kind

    if target not in VERIFY_TARGETS:
        raise ValueError(
            f"unknown target {target!r}; choose from {VERIFY_TARGETS}"
        )
    input_kind = input_kind or default_input_kind(target)
    data = make_input(input_kind, size, seed)

    with obs.span("mitigate.verify", target=target, size=size):
        # 1. Before: scan, plan, meter.
        ctx_before = TracingContext(max_events=max_events)
        target_for(target, data)(ctx_before)
        tc = TaintChannel(max_events=max_events)
        before_scan = tc.analyze(
            target, target_for(target, data), ctx=ctx_before
        )
        if plan is None:
            plan = build_plan(before_scan, secret_spans=secret_spans)
        before = measure_gadget_live(
            target, size, seed, input_kind=input_kind
        )

        # 2. Apply.
        kernel = build_kernel(target, plan, hash_bits=hash_bits)

        # 3. After: one traced run serves the meter and the rescan.
        ctx_after = TracingContext(
            max_events=max_events,
            record_untainted_accesses=True,
            tier=InstrumentationTier.ADDRESS_ONLY,
        )
        kernel.run(data, ctx_after)
        after_scan = tc.analyze(
            target, lambda ctx: None, ctx=ctx_after
        )
        mitigated = {sp.site for sp in plan.mitigated_sites()}
        found_after = {g.site for g in after_scan.gadgets}
        residual = sorted(found_after & mitigated)
        leftover = sorted(found_after - mitigated)

        lines = _metered_lines(ctx_after, target)
        reduced = _reduce_bursts(lines, _burst_len(target, kernel))
        bases = {name: arr.base for name, arr in ctx_after.arrays.items()}
        after = leakage_from_lines(
            target, reduced, bases, size, input_kind, seed
        )

        # 4. Outputs + the bill.
        t0 = time.perf_counter()
        out_vuln = target_for(target, data)(NativeContext())
        t1 = time.perf_counter()
        out_mit = kernel.run_native(data)
        t2 = time.perf_counter()
        guarded = bool(kernel.guard_spans)
        guard_ok = True
        if guarded:
            secret = set()
            for lo, hi in kernel.guard_spans:
                secret.update(range(lo, hi))
            leaked_idx = {
                after_scan.tags.info(t).index
                for g in after_scan.gadgets
                for t in g.leaked_tags()
                if after_scan.tags.info(t).source == "input"
            }
            guard_ok = not (leaked_idx & secret)

        report = MitigationReport(
            target=target,
            size=size,
            input_kind=input_kind,
            seed=seed,
            plan=plan,
            before=before,
            after=after,
            output_equal=(out_mit == out_vuln),
            decodable=(_decode(target, out_mit) == data),
            guarded=guarded,
            guard_ok=guard_ok,
            residual_sites=residual,
            leftover_sites=leftover,
            accesses_before=_count_accesses(ctx_before),
            accesses_after=_count_accesses(ctx_after),
            elapsed_seconds={
                "vulnerable": t1 - t0,
                "mitigated": t2 - t1,
            },
        )
    obs.counter_add("mitigate.residual_gadgets", len(residual))
    return report
