"""Mitigations against compression cache side-channels (Section VIII).

The paper's discussion names constant-time compression as the would-be
defence (while noting that disabling compression is the only deployed
complete fix).  This package implements the two oblivious-access
building blocks that make the studied gadgets constant-*access*:

* :func:`oblivious_histogram` — a Bzip2 histogram whose loop touches
  every cache line of ``ftab`` on every iteration, so the access trace
  is input-independent at cache-line granularity.
* :class:`ObliviousTable` — a table wrapper whose reads/writes stream
  over all lines (ORAM-free linear scanning, the classic constant-time
  lookup), used to build a hardened LZW probe.

They are deliberately honest about cost: the benchmarks measure the
(large) slowdown, which is why such mitigations are not deployed — the
paper's point.
"""

from repro.mitigations.oblivious import (
    ObliviousTable,
    oblivious_histogram,
    oblivious_lzw_compress,
)

__all__ = [
    "ObliviousTable",
    "oblivious_histogram",
    "oblivious_lzw_compress",
]
