"""Mitigations against compression side-channels (Section VIII + BREACH).

Two families:

**Oblivious access** (the paper's constant-time discussion) — make the
cache-*address* trace input-independent:

* :func:`oblivious_histogram` — a Bzip2 histogram whose loop touches
  every cache line of ``ftab`` on every iteration, so the access trace
  is input-independent at cache-line granularity.
* :class:`ObliviousTable` — a table wrapper whose reads/writes stream
  over all lines (ORAM-free linear scanning, the classic constant-time
  lookup), used to build a hardened LZW probe.

**Oracle shaping** (the BREACH / memory-compression channel of
:mod:`repro.oracle`) — make the compressed *size* / *wall-time*
observable useless:

* :mod:`repro.mitigations.padding` — gzhttp-style random padding, size
  quantization, and latency jitter applied to the sealed observable;
* :mod:`repro.mitigations.debreach` — Debreach-style taint-guarded
  deflate that excludes secret spans from LZ77 match search, so
  attacker input can never compress against the secret.

All of them are deliberately honest about cost: the campaign sweeps
measure recovery-rate-vs-overhead curves, which is why such mitigations
are rarely deployed — the paper's point.
"""

from repro.mitigations.apply import MitigatedKernel, build_kernel
from repro.mitigations.masking import MaskedTable
from repro.mitigations.oblivious import (
    ObliviousTable,
    oblivious_histogram,
    oblivious_lzw_compress,
)
from repro.mitigations.plan import (
    MITIGATION_KINDS,
    MitigationPlan,
    SitePlan,
    build_plan,
)
from repro.mitigations.preload import PreloadedTable
from repro.mitigations.registry import (
    MitigationRegistry,
    ObliviousSiteTable,
    make_wrapper,
)
from repro.mitigations.verify import MitigationReport, verify_mitigation
from repro.mitigations.padding import (
    LatencyJitter,
    ORACLE_MITIGATIONS,
    OracleMitigation,
    RandomPadding,
    SizeQuantization,
    get_oracle_mitigation,
)
from repro.mitigations.debreach import (
    GuardedDeflater,
    guarded_deflate_compress,
    guarded_gzip_compress,
)

__all__ = [
    "MITIGATION_KINDS",
    "MaskedTable",
    "MitigatedKernel",
    "MitigationPlan",
    "MitigationRegistry",
    "MitigationReport",
    "ObliviousSiteTable",
    "PreloadedTable",
    "SitePlan",
    "build_kernel",
    "build_plan",
    "make_wrapper",
    "verify_mitigation",
    "ObliviousTable",
    "oblivious_histogram",
    "oblivious_lzw_compress",
    "LatencyJitter",
    "ORACLE_MITIGATIONS",
    "OracleMitigation",
    "RandomPadding",
    "SizeQuantization",
    "get_oracle_mitigation",
    "GuardedDeflater",
    "guarded_deflate_compress",
    "guarded_gzip_compress",
]
