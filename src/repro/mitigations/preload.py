"""Preloading: pull the whole table through the cache around each access.

The classic "preload the S-box" defence (also the paper's suggestion for
small lookup tables): perform the real access, then touch one element in
every *other* cache line of the table.  After the burst, every line of
the table is equally fresh, so an attacker probing at access granularity
sees the identical line multiset no matter which element was wanted.

Compared with :class:`~repro.mitigations.oblivious.ObliviousTable` this
keeps the real access's read-your-write semantics trivially (the real
element is accessed directly) and costs the same one-touch-per-line; the
difference is intent and applicability: preloading only *reads* the
cover lines, so it is selected for read-only gadget sites — a write-kind
observer would still see the lone real write of a ``set``.
"""

from __future__ import annotations

from repro.exec.arrays import TArray
from repro.taint.value import value_of


class PreloadedTable:
    """Surround each access of a :class:`TArray` with a full-table read
    sweep (one element per cache line, ascending line order)."""

    def __init__(self, array: TArray, site: str = "") -> None:
        self.array = array
        self.site = site
        self._line_starts: list[int] = []
        self._lines: list[int] = []
        prev_line = None
        for k in range(array.length):
            line = array.address_of(k) >> 6
            if line != prev_line:
                self._line_starts.append(k)
                self._lines.append(line)
                prev_line = line

    def _cover(self, skip_line: int, site: str) -> None:
        """Read one element from every line except ``skip_line``."""
        for line, start in zip(self._lines, self._line_starts):
            if line != skip_line:
                self.array.get(start, site=site)

    def get(self, index, site: str = ""):
        i = value_of(index)
        value = self.array.get(i, site=site or self.site)
        self._cover(self.array.address_of(i) >> 6, site or self.site)
        return value

    def set(self, index, new_value, site: str = "") -> None:
        i = value_of(index)
        self.array.set(i, new_value, site=site or self.site)
        self._cover(self.array.address_of(i) >> 6, site or self.site)

    def add(self, index, delta, site: str = "") -> None:
        i = value_of(index)
        value = self.array.get(i, site=site or self.site)
        self.array.set(i, value + delta, site=site or self.site)
        self._cover(self.array.address_of(i) >> 6, site or self.site)

    @property
    def cover_count(self) -> int:
        """Distinct lines of the table (touches per ``get``)."""
        return len(self._lines)

    # -- TArray passthroughs --------------------------------------------
    def snapshot(self) -> list:
        return self.array.snapshot()

    def fill(self, value) -> None:
        self.array.fill(value)

    def address_of(self, index: int) -> int:
        return self.array.address_of(index)

    def __len__(self) -> int:
        return self.array.length
