"""Output-shaping mitigations for the compression oracles.

The BREACH countermeasure family that gzhttp actually ships (disabled
by default — SNIPPETS.md snippet 1): instead of fixing the compressor,
obfuscate the *observable*.  Three shapes:

* :class:`RandomPadding` — add 0..``max_pad`` random bytes to every
  response size (gzhttp's random-jitter option).  Per-query
  independent noise: a single size delta no longer identifies the
  matching guess, so the attacker needs averaging the demo budgets
  don't allow.
* :class:`SizeQuantization` — round sizes up to the next multiple of
  ``quantum``.  Deterministic: all raw sizes within one quantum bucket
  become *indistinguishable* (asserted as a Hypothesis property), at a
  bounded worst-case overhead of ``quantum - 1`` bytes.
* :class:`LatencyJitter` — add half-normal noise to compression
  wall-time, drowning the Schwarzl-style timing distinguisher.

Each mitigation transforms only the sealed observable; the compressed
stream itself is untouched (contrast :mod:`repro.mitigations.debreach`,
which changes what the compressor may match).  All randomness comes
from the RNG the oracle owns, so mitigated oracles stay deterministic
functions of ``(secret, input, seed, query index)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class OracleMitigation:
    """Base class: the identity transform (no mitigation)."""

    name = "none"

    def transform_size(self, size: int, rng: random.Random) -> int:
        """Map a true container size to the size the attacker sees."""
        return size

    def transform_time(self, t: float, rng: random.Random) -> float:
        """Map a true wall-time to the latency the attacker sees."""
        return t


@dataclass(frozen=True)
class RandomPadding(OracleMitigation):
    """gzhttp-style random padding: size += uniform 0..``max_pad``."""

    max_pad: int = 32
    name = "padding"

    def transform_size(self, size: int, rng: random.Random) -> int:
        return size + rng.randrange(self.max_pad + 1)


@dataclass(frozen=True)
class SizeQuantization(OracleMitigation):
    """Round sizes up to the next multiple of ``quantum``."""

    quantum: int = 64
    name = "quantize"

    def transform_size(self, size: int, rng: random.Random) -> int:
        del rng  # deterministic by design
        return -(-size // self.quantum) * self.quantum


@dataclass(frozen=True)
class LatencyJitter(OracleMitigation):
    """Half-normal latency noise: t += |N(0, sigma)| ticks."""

    sigma: float = 40.0
    name = "jitter"

    def transform_time(self, t: float, rng: random.Random) -> float:
        return t + abs(rng.gauss(0.0, self.sigma))


#: Mitigation names accepted by the oracle factories and the CLI.
#: ``debreach`` is listed for discoverability but constructed by the
#: victim factory (it changes compression, not the observable).
ORACLE_MITIGATIONS = ("none", "padding", "quantize", "jitter", "debreach")


def get_oracle_mitigation(name: str, **params) -> OracleMitigation:
    """Construct an observable-shaping mitigation by name.

    ``params`` forwards the knob of the chosen shape (``max_pad``,
    ``quantum``, ``sigma``); unknown names raise with the catalogue.
    """
    if name in ("none", "debreach"):
        # Debreach hardens the compressor itself; at the observable
        # layer it is the identity.
        return OracleMitigation()
    if name == "padding":
        return RandomPadding(**params)
    if name == "quantize":
        return SizeQuantization(**params)
    if name == "jitter":
        return LatencyJitter(**params)
    raise ValueError(
        f"unknown oracle mitigation {name!r}; choose from "
        f"{ORACLE_MITIGATIONS}"
    )
