"""Mitigation planning: turn a TaintChannel report into a repair recipe.

:func:`build_plan` walks the gadgets of an
:class:`~repro.core.taintchannel.gadgets.AnalysisResult` and selects,
per dereference site, the cheapest mitigation that closes its channel:

``none``
    No taint ever reaches the line-granularity address bits (bit >= 6):
    the channel carries nothing, leave the site alone.
``guard``
    Debreach-style span exclusion: keep the code but forbid the secret
    from participating (zlib match search with declared secret spans),
    or — for control-flow gadgets, whose index is *chosen by* a tainted
    branch rather than computed from input — the fix is in the branch,
    not the table, so no table cover applies.
``preload``
    Read-only sites: do the real read, then pull every other line of
    the table through the cache (:mod:`repro.mitigations.preload`).
``mask``
    Few tainted line-bits on an aligned table: touch only the lines
    those bits can reach (:mod:`repro.mitigations.masking`), cheaper
    than a full scan when ``2**len(mask_bits)`` < table lines.
``oblivious``
    The general fallback: full-scan every access
    (:class:`~repro.mitigations.oblivious.ObliviousTable`).

The plan is a plain JSON-serialisable object so it can be written to
disk by ``repro mitigate survey`` and fed back to ``repro mitigate
apply``; everything the apply layer needs (mask bits, table geometry)
is captured in ``SitePlan.params``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.taintchannel.gadgets import (
    CACHE_LINE_BITS,
    AnalysisResult,
    Gadget,
)

MITIGATION_NONE = "none"
MITIGATION_OBLIVIOUS = "oblivious"
MITIGATION_MASK = "mask"
MITIGATION_PRELOAD = "preload"
MITIGATION_GUARD = "guard"

MITIGATION_KINDS = (
    MITIGATION_NONE,
    MITIGATION_OBLIVIOUS,
    MITIGATION_MASK,
    MITIGATION_PRELOAD,
    MITIGATION_GUARD,
)

#: Masking must beat the full scan by construction; above this many
#: cover combinations the bookkeeping stops paying for itself and the
#: planner falls back to the oblivious scan.
MASK_COMBO_LIMIT = 64


@dataclass
class SitePlan:
    """One gadget site's diagnosis and chosen mitigation."""

    site: str
    array: str
    mitigation: str
    flow: str  # "data" | "control" | "unknown" (no provenance recorded)
    kinds: list[str]
    leaked_addr_bits: list[int]  # tainted address bits >= CACHE_LINE_BITS
    leaked_input_tags: int
    leaked_other_tags: int
    accesses: int
    table_lines: int
    cover_lines: int  # lines touched per access once mitigated
    rationale: str
    params: dict = field(default_factory=dict)

    @property
    def mitigated(self) -> bool:
        return self.mitigation not in (MITIGATION_NONE, MITIGATION_GUARD)

    def describe(self) -> str:
        return (
            f"{self.site!r} ({self.array}, {'/'.join(self.kinds)}, "
            f"{self.flow}-flow): {self.mitigation} — {self.rationale}"
        )


@dataclass
class MitigationPlan:
    """A full per-site repair recipe for one target/input pair."""

    target: str
    input_len: int
    sites: list[SitePlan]

    def site(self, site: str) -> SitePlan:
        for sp in self.sites:
            if sp.site == site:
                return sp
        raise KeyError(f"no plan entry for site {site!r}")

    def mitigated_sites(self) -> list[SitePlan]:
        return [sp for sp in self.sites if sp.mitigated]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "target": self.target,
                "input_len": self.input_len,
                "sites": [asdict(sp) for sp in self.sites],
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MitigationPlan":
        raw = json.loads(text)
        return cls(
            target=raw["target"],
            input_len=int(raw["input_len"]),
            sites=[SitePlan(**sp) for sp in raw["sites"]],
        )

    def summary(self) -> str:
        lines = [
            f"Mitigation plan for {self.target} "
            f"({self.input_len} input bytes, {len(self.sites)} sites)"
        ]
        for sp in self.sites:
            lines.append(f"  - {sp.describe()}")
        return "\n".join(lines)


def _leaked_addr_bits(gadget: Gadget) -> list[int]:
    """Tainted address bits the channel exposes (>= the line offset)."""
    bits: set[int] = set()
    for acc in gadget.accesses:
        for bit, bit_tags in acc.addr_taint:
            if bit >= CACHE_LINE_BITS and bit_tags:
                bits.add(bit)
    return sorted(bits)


def _flow_of(gadget: Gadget) -> str:
    if all(acc.addr_origin is None for acc in gadget.accesses):
        return "unknown"
    return "data" if gadget.is_data_flow() else "control"


def _table_lines(length: int, elem_size: int, base: int) -> int:
    if length == 0:
        return 0
    first = base >> 6
    last = (base + length * elem_size - 1) >> 6
    return last - first + 1


def plan_site(
    gadget: Gadget,
    result: AnalysisResult,
    secret_spans: Optional[list[tuple[int, int]]] = None,
) -> SitePlan:
    """Diagnose one gadget and choose its mitigation."""
    leaked_bits = _leaked_addr_bits(gadget)
    leaked = gadget.leaked_tags()
    n_input = sum(
        1 for t in leaked if result.tags.info(t).source == "input"
    )
    flow = _flow_of(gadget)
    kinds = sorted(gadget.kinds)
    length, elem_size, base = result.geometry.get(
        gadget.array, (0, gadget.accesses[0].elem_size, 0)
    )
    table_lines = _table_lines(length, elem_size, base)

    common = dict(
        site=gadget.site,
        array=gadget.array,
        flow=flow,
        kinds=kinds,
        leaked_addr_bits=leaked_bits,
        leaked_input_tags=n_input,
        leaked_other_tags=len(leaked) - n_input,
        accesses=gadget.count,
        table_lines=table_lines,
    )

    if not leaked_bits:
        return SitePlan(
            mitigation=MITIGATION_NONE,
            cover_lines=1,
            rationale="taint never reaches line-granularity address bits",
            **common,
        )

    if flow == "control":
        return SitePlan(
            mitigation=MITIGATION_GUARD,
            cover_lines=1,
            rationale=(
                "index chosen by tainted control flow, not computed "
                "from it; linearise/guard the branch, table covers "
                "do not apply"
            ),
            **common,
        )

    if secret_spans and gadget.array in ("head", "prev", "window"):
        return SitePlan(
            mitigation=MITIGATION_GUARD,
            cover_lines=1,
            rationale=(
                "declared secret spans: exclude them from the leaking "
                "computation (Debreach-style) instead of covering the "
                "table"
            ),
            params={"secret_spans": [list(s) for s in secret_spans]},
            **common,
        )

    if set(kinds) <= {"read"}:
        return SitePlan(
            mitigation=MITIGATION_PRELOAD,
            cover_lines=max(table_lines, 1),
            rationale=(
                "read-only site: real read plus a full-table read "
                "sweep leaves every line equally fresh"
            ),
            **common,
        )

    # Masking needs an exact address-bit <-> index-bit correspondence:
    # power-of-two element size and a line-aligned base.
    mask_ok = (
        elem_size > 0
        and elem_size & (elem_size - 1) == 0
        and base % 64 == 0
    )
    if mask_ok:
        shift = elem_size.bit_length() - 1
        mask_index_bits = sorted(
            b - shift for b in leaked_bits if b - shift >= 0
        )
        combos = 1 << len(mask_index_bits)
        if combos <= MASK_COMBO_LIMIT and combos < table_lines:
            return SitePlan(
                mitigation=MITIGATION_MASK,
                cover_lines=combos,
                rationale=(
                    f"only {len(mask_index_bits)} tainted line-bits: "
                    f"cover their {combos} combinations instead of all "
                    f"{table_lines} table lines"
                ),
                params={"mask_index_bits": mask_index_bits},
                **common,
            )

    return SitePlan(
        mitigation=MITIGATION_OBLIVIOUS,
        cover_lines=max(table_lines, 1),
        rationale=(
            f"taint spans too many index bits for masking: full "
            f"{max(table_lines, 1)}-line scan per access"
        ),
        **common,
    )


def build_plan(
    result: AnalysisResult,
    secret_spans: Optional[list[tuple[int, int]]] = None,
) -> MitigationPlan:
    """Derive the per-site mitigation plan from a gadget report.

    ``secret_spans`` (byte ranges of the input that are secret) switches
    the zlib-family match-finder sites to Debreach-style guarding; see
    :mod:`repro.mitigations.debreach`.
    """
    sites = [
        plan_site(g, result, secret_spans=secret_spans)
        for g in sorted(result.gadgets, key=lambda g: -g.count)
    ]
    return MitigationPlan(
        target=result.target, input_len=result.input_len, sites=sites
    )
