"""Index-mask covering: hide only the *tainted* index bits of a table.

The full oblivious scan of :class:`~repro.mitigations.oblivious.
ObliviousTable` touches every cache line of the table on every access —
correct but maximally expensive.  When the gadget report shows that only
a few line-granularity index bits ever carry taint (e.g. zlib's
``dyn_ltree[c].Freq++``, where ``c`` is one input byte indexing a
257-entry table), it is enough to touch one element in every line the
tainted bits can *reach*: vary exactly those bits through all their
combinations and leave the untainted bits pinned.

For two equal-length inputs the tainted bits are, by construction, the
only bits that differ at a given logical step, so the covered line set —
and therefore the per-step touched-line multiset — is input-independent.
Cost is ``2**len(mask_bits)`` touches per access instead of one per
table line, which is what makes masking worth selecting when
``2**len(mask_bits)`` is smaller than the table's line count.
"""

from __future__ import annotations

from repro.exec.arrays import TArray
from repro.taint.value import value_of

CACHE_LINE = 64


class MaskedTable:
    """Cover a :class:`TArray` access by varying its tainted index bits.

    Args:
        array: the backing table.
        mask_bits: index-bit positions that may carry taint (from the
            gadget's address-taint rows, shifted down by the element
            size; the planner computes these).  Every access touches one
            element per distinct cache line reachable by varying exactly
            these bits of the requested index.
        site: label stamped on the cover traffic, normally the
            *original* gadget site so observers (and the diag meter)
            attribute the uniform traffic to the mitigated location.
    """

    def __init__(self, array: TArray, mask_bits, site: str = "") -> None:
        self.array = array
        self.site = site
        self.mask_bits = tuple(sorted(set(int(b) for b in mask_bits)))
        self._line_starts: list[int] = []
        self._line_of: dict[int, int] = {}
        prev_line = None
        for k in range(array.length):
            line = array.address_of(k) >> 6
            if line != prev_line:
                self._line_of[line] = len(self._line_starts)
                self._line_starts.append(k)
                prev_line = line

    def _positions(self, index) -> tuple[int, list[int]]:
        """One probe element per line the tainted bits can reach; the
        target's line probes the target element itself."""
        i = value_of(index)
        base = i
        for b in self.mask_bits:
            base &= ~(1 << b)
        probe_of_line: dict[int, int] = {}
        for combo in range(1 << len(self.mask_bits)):
            cand = base
            for k, b in enumerate(self.mask_bits):
                if (combo >> k) & 1:
                    cand |= 1 << b
            if cand >= self.array.length:
                continue
            line = self.array.address_of(cand) >> 6
            probe_of_line.setdefault(
                line, self._line_starts[self._line_of[line]]
            )
        probe_of_line[self.array.address_of(i) >> 6] = i
        return i, [probe_of_line[line] for line in sorted(probe_of_line)]

    @property
    def cover_count(self) -> int:
        """Lines touched per access (with an in-range all-zero base)."""
        return len(self._positions(0)[1])

    def get(self, index, site: str = ""):
        i, positions = self._positions(index)
        result = 0
        for k in positions:
            value = self.array.get(k, site=site or self.site)
            if k == i:
                result = value
        return result

    def set(self, index, new_value, site: str = "") -> None:
        i, positions = self._positions(index)
        for k in positions:
            value = self.array.get(k, site=site or self.site)
            self.array.set(
                k, new_value if k == i else value, site=site or self.site
            )

    def add(self, index, delta, site: str = "") -> None:
        i, positions = self._positions(index)
        for k in positions:
            value = self.array.get(k, site=site or self.site)
            self.array.set(
                k, value + delta if k == i else value, site=site or self.site
            )

    # -- TArray passthroughs (wrappers are drop-in table replacements) --
    def snapshot(self) -> list:
        return self.array.snapshot()

    def fill(self, value) -> None:
        self.array.fill(value)

    def address_of(self, index: int) -> int:
        return self.array.address_of(index)

    def __len__(self) -> int:
        return self.array.length
