"""Oblivious-access building blocks and hardened compressor variants.

The defence property is *constant access at cache-line granularity*:
for any two equal-length inputs, the multiset of cache lines touched per
step is identical, so neither Prime+Probe nor the controlled channel
carries information.  Correctness is preserved: the hardened variants
produce output decodable by the ordinary decompressors.

The cost is also the point: every logical table access becomes a scan of
one element per cache line of the table, which the mitigation benchmark
quantifies (hundreds to thousands of extra accesses per input byte —
the reason the paper notes that disabling compression remains the only
deployed complete defence).
"""

from __future__ import annotations

from typing import Optional

from repro.compression.bitio import LSBBitWriter
from repro.compression.bzip2.blocksort import (
    FTAB_LEN,
    FTAB_MISALIGN,
    SITE_BLOCK,
    SITE_QUADRANT,
)
from repro.compression.lzw import (
    FIRST_FREE,
    INIT_BITS,
    MAGIC,
    MAX_BITS,
    MAX_MAX_CODE,
    HSHIFT,
    _maxcode,
)
from repro.exec.arrays import TArray
from repro.exec.context import ExecutionContext, NativeContext
from repro.taint.value import value_of

CACHE_LINE = 64

SITE_OBLIVIOUS_FTAB = "obliviousHistogram/ftab scan"
SITE_OBLIVIOUS_HTAB = "obliviousCompress/htab scan"


class ObliviousTable:
    """Constant-access wrapper around a :class:`TArray`.

    Every ``get``/``set``/``add`` touches exactly one element in *every*
    cache line of the backing array, at the same intra-line offset, and
    selects or updates the requested element with data-independent
    control flow.  At cache-line granularity the access pattern is a
    constant full scan.
    """

    def __init__(self, array: TArray, site: str = "") -> None:
        self.array = array
        self.site = site
        # First element index of every distinct cache line the array
        # spans (computed from real addresses, so deliberately
        # misaligned arrays like Bzip2's ftab are handled correctly).
        self._line_starts: list[int] = []
        self._line_of: dict[int, int] = {}
        prev_line = None
        for k in range(array.length):
            line = array.address_of(k) >> 6
            if line != prev_line:
                self._line_of[line] = len(self._line_starts)
                self._line_starts.append(k)
                prev_line = line

    def _positions(self, index) -> tuple[int, list[int]]:
        """One element per cache line; the target's line probes the
        target element itself (intra-line position is invisible to the
        channel)."""
        i = value_of(index)
        target_line = self.array.address_of(i) >> 6
        positions = list(self._line_starts)
        positions[self._line_of[target_line]] = i
        return i, positions

    def get(self, index):
        """Read ``array[index]`` while touching every line once."""
        i, positions = self._positions(index)
        result = 0
        for k in positions:
            value = self.array.get(k, site=self.site)
            if k == i:
                result = value
        return result

    def set(self, index, new_value) -> None:
        """Write ``array[index]``; every line gets one read + one write
        (non-target lines write their old value back)."""
        i, positions = self._positions(index)
        for k in positions:
            value = self.array.get(k, site=self.site)
            self.array.set(k, new_value if k == i else value, site=self.site)

    def add(self, index, delta) -> None:
        """``array[index] += delta`` with uniform full-scan traffic."""
        i, positions = self._positions(index)
        for k in positions:
            value = self.array.get(k, site=self.site)
            self.array.set(k, value + delta if k == i else value, site=self.site)


def oblivious_histogram(
    ctx: ExecutionContext,
    block: TArray,
    nblock: int,
    ftab: Optional[TArray] = None,
    quadrant: Optional[TArray] = None,
) -> TArray:
    """Listing 3 hardened: ``ftab[j]++`` becomes a full-table scan.

    Drop-in replacement for
    :func:`repro.compression.bzip2.blocksort.histogram`; produces the
    identical frequency table while touching every ftab cache line at
    every iteration.
    """
    if ftab is None:
        ftab = ctx.array("ftab", FTAB_LEN, elem_size=4, misalign=FTAB_MISALIGN)
    if quadrant is None:
        quadrant = ctx.array("quadrant", max(nblock, 1), elem_size=2)
    ftab.fill(0)
    oblivious = ObliviousTable(ftab, site=SITE_OBLIVIOUS_FTAB)

    j = block.get(0, site=SITE_BLOCK) << 8
    for i in range(nblock - 1, -1, -1):
        ctx.tick(3)
        quadrant.set(i, 0, site=SITE_QUADRANT)
        j = (j >> 8) | ((block.get(i, site=SITE_BLOCK) & 0xFF) << 8)
        oblivious.add(j, 1)
    return ftab


def oblivious_lzw_compress(
    data: bytes,
    ctx: Optional[ExecutionContext] = None,
    hash_bits: int = 12,
) -> bytes:
    """Ncompress-style LZW with an oblivious hash-table probe.

    The probe index is reduced modulo a (smaller, scan-affordable) table
    and every probe scans the full table, so the access trace carries no
    information about ``c`` or ``ent``.  Output remains decodable by
    :func:`repro.compression.lzw.lzw_decompress`: the hash table is only
    the *search structure*; the emitted code stream depends on the
    dictionary content, which is unchanged.
    """
    if ctx is None:
        ctx = NativeContext()
    hsize = 1 << hash_bits

    out = LSBBitWriter()
    with ctx.func("oblivious_compress"):
        htab = ctx.array("htab", hsize, elem_size=8, init=-1)
        codetab = ctx.array("codetab", hsize, elem_size=2, init=0)
        ob_htab = ObliviousTable(htab, site=SITE_OBLIVIOUS_HTAB)
        ob_codetab = ObliviousTable(codetab, site=SITE_OBLIVIOUS_HTAB)
        inp = ctx.input_bytes(data)

        if not data:
            return MAGIC + bytes([0x80 | MAX_BITS])

        n_bits = INIT_BITS
        maxcode = _maxcode(n_bits)
        free_ent = FIRST_FREE

        ent = inp[0]
        for pos in range(1, len(data)):
            ctx.tick(4)
            c = inp[pos]
            fc = (ent << 8) | c
            hp = ((c << HSHIFT) ^ ent) % hsize

            found = False
            slot = ob_htab.get(hp)
            if slot == fc:
                found = True
            elif not (slot < 0):
                disp = hsize - value_of(hp) if value_of(hp) != 0 else 1
                while True:
                    ctx.tick(2)
                    hp = (hp + (hsize - disp)) % hsize
                    slot = ob_htab.get(hp)
                    if slot == fc:
                        found = True
                        break
                    if slot < 0:
                        break

            if found:
                ent = ob_codetab.get(hp)
                continue

            out.write(ent, n_bits)
            if free_ent < MAX_MAX_CODE:
                ob_codetab.set(hp, free_ent)
                ob_htab.set(hp, fc)
                free_ent += 1
                if free_ent > maxcode and n_bits < MAX_BITS:
                    n_bits += 1
                    maxcode = _maxcode(n_bits)
            ent = c

        out.write(ent, n_bits)

    return MAGIC + bytes([0x80 | MAX_BITS]) + out.getvalue()
