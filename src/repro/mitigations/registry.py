"""Site-keyed mitigation registry: plan entries -> table wrappers.

The apply layer (:mod:`repro.mitigations.apply`) does not hard-code
which wrapper implements which mitigation; it asks this registry.  Each
wrapper is a drop-in table replacement (``get``/``set``/``add`` with the
``site=`` keyword plus ``snapshot``/``fill`` passthroughs) constructed
around the *original* backing :class:`~repro.exec.arrays.TArray`, so a
kernel patched per-site keeps byte-identical table contents — and
therefore byte-identical output.
"""

from __future__ import annotations

from typing import Callable

from repro.exec.arrays import TArray
from repro.mitigations.masking import MaskedTable
from repro.mitigations.oblivious import ObliviousTable
from repro.mitigations.plan import (
    MITIGATION_MASK,
    MITIGATION_OBLIVIOUS,
    MITIGATION_PRELOAD,
    MitigationPlan,
    SitePlan,
)
from repro.mitigations.preload import PreloadedTable


class ObliviousSiteTable(ObliviousTable):
    """:class:`ObliviousTable` with the drop-in table interface.

    The base class binds its site label at construction; kernel code
    written against :class:`TArray` passes ``site=`` per call, so this
    adapter accepts (and prefers) the per-call label and forwards the
    passthroughs the kernels use (``snapshot`` for zlib's
    ``flush_block``, ``fill`` for LZW's block-mode clear).
    """

    def get(self, index, site: str = ""):
        if site:
            self.site = site
        return super().get(index)

    def set(self, index, new_value, site: str = "") -> None:
        if site:
            self.site = site
        super().set(index, new_value)

    def add(self, index, delta, site: str = "") -> None:
        if site:
            self.site = site
        super().add(index, delta)

    def snapshot(self) -> list:
        return self.array.snapshot()

    def fill(self, value) -> None:
        self.array.fill(value)

    def address_of(self, index: int) -> int:
        return self.array.address_of(index)

    def __len__(self) -> int:
        return self.array.length


WrapperFactory = Callable[[TArray, SitePlan], object]

#: mitigation kind -> wrapper factory.  ``none``/``guard`` entries are
#: deliberately absent: they patch nothing at the table layer.
MITIGATION_WRAPPERS: dict[str, WrapperFactory] = {
    MITIGATION_OBLIVIOUS: lambda arr, sp: ObliviousSiteTable(
        arr, site=sp.site
    ),
    MITIGATION_MASK: lambda arr, sp: MaskedTable(
        arr, sp.params["mask_index_bits"], site=sp.site
    ),
    MITIGATION_PRELOAD: lambda arr, sp: PreloadedTable(arr, site=sp.site),
}


def make_wrapper(array: TArray, site_plan: SitePlan):
    """Instantiate the wrapper a plan entry calls for."""
    try:
        factory = MITIGATION_WRAPPERS[site_plan.mitigation]
    except KeyError:
        raise ValueError(
            f"mitigation {site_plan.mitigation!r} has no table wrapper "
            f"(registered: {sorted(MITIGATION_WRAPPERS)})"
        ) from None
    return factory(array, site_plan)


class MitigationRegistry:
    """Per-site lookup used while patching a kernel.

    Collects the *wrapping* entries of a plan (``mask``/``preload``/
    ``oblivious``); ``wrap`` hands back either the mitigated wrapper or
    the original table, so kernel factories can route every site through
    one call.
    """

    def __init__(self) -> None:
        self._by_site: dict[str, SitePlan] = {}

    @classmethod
    def from_plan(cls, plan: MitigationPlan) -> "MitigationRegistry":
        reg = cls()
        for sp in plan.mitigated_sites():
            reg.register(sp)
        return reg

    def register(self, site_plan: SitePlan) -> None:
        self._by_site[site_plan.site] = site_plan

    def sites(self) -> list[str]:
        return sorted(self._by_site)

    def plan_for(self, site: str) -> SitePlan:
        return self._by_site[site]

    def __contains__(self, site: str) -> bool:
        return site in self._by_site

    def wrap(self, site: str, array: TArray):
        """The mitigated wrapper for ``site``, or ``array`` unchanged."""
        sp = self._by_site.get(site)
        if sp is None:
            return array
        return make_wrapper(array, sp)
