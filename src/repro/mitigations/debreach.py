"""Debreach-style taint-guarded compression: keep secrets out of LZ77
match search.

Debreach (PAPERS.md) shows the BREACH channel closes if the compressor
never creates cross-references between secret bytes and anything else:
the secret then contributes only literals, so attacker-controlled input
cannot shorten the output by matching against it.  This module applies
that transform to the repo's zlib-style deflate:

* positions whose 3-byte hash window touches a guarded span are never
  inserted into the hash chain (``head``/``prev`` never point *at* a
  secret);
* match extension stops at a guarded-span boundary on both the match
  source and the current position (a match never *covers* a secret
  byte).

The rolling ``ins_h`` hash is still advanced over guarded bytes so hash
state downstream of the secret is identical to stock deflate — only the
table writes and the match lengths change.  Output stays a valid token
stream (:func:`repro.compression.lz77.deflate_decompress` inverts it);
the cost is the compression lost on the guarded spans, which the oracle
mitigation sweeps report as size overhead.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from repro.compression.lz77 import (
    MAGIC,
    MAX_CHAIN,
    MAX_DIST,
    MAX_MATCH,
    MIN_MATCH,
    NICE_LENGTH,
    NIL,
    WMASK,
    SITE_HEAD,
    SITE_PREV,
    SITE_WINDOW,
    _Deflater,
    _run_deflater,
)
from repro.compression.gzip_container import gzip_header, gzip_trailer
from repro.exec.context import ExecutionContext, NativeContext
from repro.taint.value import value_of

Span = tuple[int, int]


def _next_guard_table(n: int, spans: Sequence[Span]) -> list[int]:
    """``table[i]`` = first guarded position >= ``i`` (or ``n``)."""
    guarded = [False] * n
    for start, end in spans:
        for i in range(max(0, start), min(n, end)):
            guarded[i] = True
    table = [n] * (n + 1)
    nxt = n
    for i in range(n - 1, -1, -1):
        if guarded[i]:
            nxt = i
        table[i] = nxt
    return table


class GuardedDeflater(_Deflater):
    """A :class:`_Deflater` whose hash chain excludes guarded spans."""

    def __init__(self, data: bytes, ctx: ExecutionContext, spans: Sequence[Span]):
        super().__init__(data, ctx)
        self._next_guard = _next_guard_table(self.n, spans)

    def _insertable(self, s: int) -> bool:
        # The 3-byte string at s must be wholly outside guarded spans.
        return self._next_guard[s] >= s + self.hash_bytes

    def insert_string(self, s: int) -> int:
        # Keep the rolling hash bit-identical to stock deflate, but
        # never let head/prev reference a guarded position.
        self.update_hash(self.window.get(s + MIN_MATCH - 1))
        if not self._insertable(s):
            return NIL
        hash_head = self.head.get(self.ins_h, site=SITE_HEAD)
        self.prev.set(s & WMASK, hash_head, site=SITE_PREV)
        self.head.set(self.ins_h, s, site=SITE_HEAD)
        return hash_head

    def longest_match(self, strstart: int, cur_match: int, prev_length: int):
        # Stock longest_match with one change: max_possible is clamped
        # so neither the copy source nor the destination may run into a
        # guarded span.
        window, n = self.window, self.n
        next_guard = self._next_guard
        best_len = prev_length
        best_start = NIL
        limit = strstart - MAX_DIST if strstart > MAX_DIST else -1
        chain_length = MAX_CHAIN
        dest_cap = min(MAX_MATCH, n - strstart, next_guard[strstart] - strstart)

        while cur_match > limit and chain_length > 0:
            chain_length -= 1
            self.ctx.tick(2)
            max_possible = min(dest_cap, next_guard[cur_match] - cur_match)
            if best_len >= 1 and (
                best_len >= max_possible
                or strstart + best_len >= n
                or window.get(cur_match + best_len, site=SITE_WINDOW)
                != window.get(strstart + best_len, site=SITE_WINDOW)
            ):
                cur_match = value_of(self.prev.get(cur_match & WMASK))
                continue
            length = 0
            while (
                length < max_possible
                and window.get(cur_match + length, site=SITE_WINDOW)
                == window.get(strstart + length, site=SITE_WINDOW)
            ):
                length += 1
                self.ctx.tick(1)
            if length > best_len:
                best_len = length
                best_start = cur_match
                if length >= NICE_LENGTH or length >= max_possible:
                    break
            cur_match = value_of(self.prev.get(cur_match & WMASK))

        if best_start == NIL:
            return prev_length, NIL
        return best_len, best_start


def guarded_deflate_compress(
    data: bytes,
    spans: Sequence[Span],
    ctx: Optional[ExecutionContext] = None,
) -> bytes:
    """Deflate ``data`` with the spans excluded from match search.

    Same container as :func:`repro.compression.lz77.deflate_compress`
    (its decompressor inverts this); with no spans the output is
    byte-identical to the stock compressor.
    """
    if ctx is None:
        ctx = NativeContext()
    header = MAGIC + struct.pack("<I", len(data))
    if not data:
        return header
    with ctx.func("deflate_slow"):
        body = _run_deflater(GuardedDeflater(data, ctx, spans), ctx)
    return header + body


def guarded_gzip_compress(
    data: bytes,
    spans: Sequence[Span],
    ctx: Optional[ExecutionContext] = None,
    mtime: int = 0,
) -> bytes:
    """The gzip container around :func:`guarded_deflate_compress`."""
    return gzip_header(mtime) + guarded_deflate_compress(data, spans, ctx) + gzip_trailer(data)
