"""Apply a mitigation plan: instantiate patched compressor kernels.

The factories here rebuild each target's compressor with the tables
named in the plan routed through their mitigation wrappers (via the
:class:`~repro.mitigations.registry.MitigationRegistry`), leaving
everything else — framing, match search, entropy coding — untouched.
Because the wrappers preserve table *contents* exactly, a patched
kernel's output is byte-identical to the vulnerable kernel's and
decodes with the stock decompressors (property-tested in
``tests/test_mitigate_pipeline.py``).

One LZW-specific twist, borrowed from
:func:`~repro.mitigations.oblivious.oblivious_lzw_compress`: covering
the full ``1 << 17`` hash table would cost ~16k line touches per probe,
so the patched kernel reduces the table to ``1 << hash_bits`` slots
(default 12) first and covers *that*.  The emitted code stream is
unchanged as long as the table does not fill (the dictionary content,
not the table layout, determines the output); filling it raises rather
than looping forever on the power-of-two secondary probe.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exec.context import ExecutionContext, NativeContext
from repro.mitigations.plan import MITIGATION_GUARD, MitigationPlan
from repro.mitigations.registry import MitigationRegistry
from repro.taint.value import value_of

APPLY_TARGETS = ("zlib", "lzw", "bzip2")

DEFAULT_HASH_BITS = 12


@dataclass
class MitigatedKernel:
    """A runnable patched compressor plus its provenance.

    ``run(data, ctx)`` executes the patched kernel; after a run,
    ``wrappers`` maps each mitigated site to the wrapper instance that
    served it (the verify layer reads per-access cover counts off these
    to segment the metered line stream).
    """

    target: str
    plan: MitigationPlan
    registry: MitigationRegistry
    run: Callable[[bytes, ExecutionContext], bytes]
    guard_spans: list = field(default_factory=list)
    wrappers: dict = field(default_factory=dict)

    def run_native(self, data: bytes) -> bytes:
        """Run without tracing (output-equality checks, wall-clock)."""
        return self.run(data, NativeContext())


def _cover_count(wrapper) -> int:
    count = getattr(wrapper, "cover_count", None)
    if count is not None:
        return count
    # ObliviousSiteTable: one touch per line of the backing array.
    return len(wrapper._line_starts)


def _zlib_kernel(plan: MitigationPlan, registry: MitigationRegistry) -> MitigatedKernel:
    from repro.compression.lz77 import (
        MAGIC,
        SITE_FREQ,
        SITE_HEAD,
        SITE_PREV,
        _Deflater,
        _run_deflater,
    )

    guard_spans: list = []
    for sp in plan.sites:
        if sp.mitigation == MITIGATION_GUARD and "secret_spans" in sp.params:
            guard_spans = [tuple(s) for s in sp.params["secret_spans"]]
            break

    kernel = MitigatedKernel(
        target="zlib", plan=plan, registry=registry, run=None,
        guard_spans=guard_spans,
    )

    def run(data: bytes, ctx: ExecutionContext) -> bytes:
        header = MAGIC + struct.pack("<I", len(data))
        if not data:
            kernel.wrappers = {}
            return header
        with ctx.func("deflate_slow"):
            if guard_spans:
                # Debreach guarding fixes the match finder, not the
                # tree counters: the guarded deflater still gets the
                # plan's table wrappers routed over it below.
                from repro.mitigations.debreach import GuardedDeflater

                d = GuardedDeflater(data, ctx, guard_spans)
            else:
                d = _Deflater(data, ctx)
            wrappers = {}
            for site, attr in (
                (SITE_HEAD, "head"),
                (SITE_PREV, "prev"),
                (SITE_FREQ, "freq"),
            ):
                if site in registry:
                    wrapped = registry.wrap(site, getattr(d, attr))
                    setattr(d, attr, wrapped)
                    wrappers[site] = wrapped
            kernel.wrappers = wrappers
            body = _run_deflater(d, ctx)
        return header + body

    kernel.run = run
    return kernel


def _lzw_kernel(
    plan: MitigationPlan,
    registry: MitigationRegistry,
    hash_bits: int = DEFAULT_HASH_BITS,
) -> MitigatedKernel:
    from repro.compression.bitio import LSBBitWriter
    from repro.compression.lzw import (
        FIRST_FREE,
        HSHIFT,
        INIT_BITS,
        MAGIC,
        MAX_BITS,
        MAX_MAX_CODE,
        SITE_CODETAB,
        SITE_PRIMARY,
        SITE_SECONDARY,
        _maxcode,
    )

    kernel = MitigatedKernel(
        target="lzw", plan=plan, registry=registry, run=None
    )
    hsize = 1 << hash_bits

    def run(data: bytes, ctx: ExecutionContext) -> bytes:
        out = LSBBitWriter()
        with ctx.func("compress"):
            htab = ctx.array("htab", hsize, elem_size=8, init=-1)
            codetab = ctx.array("codetab", hsize, elem_size=2, init=0)
            wrappers = {}
            ht_primary = htab
            if SITE_PRIMARY in registry:
                ht_primary = registry.wrap(SITE_PRIMARY, htab)
                wrappers[SITE_PRIMARY] = ht_primary
            # With the reduced table, secondary probing is *more* common
            # than in the vulnerable kernel; an unplanned secondary site
            # (absent from the scan at this input size) inherits the
            # primary probe's wrapper rather than running naked.
            if SITE_SECONDARY in registry:
                ht_secondary = registry.wrap(SITE_SECONDARY, htab)
                wrappers[SITE_SECONDARY] = ht_secondary
            else:
                ht_secondary = ht_primary
            ct = codetab
            if SITE_CODETAB in registry:
                ct = registry.wrap(SITE_CODETAB, codetab)
                wrappers[SITE_CODETAB] = ct
            kernel.wrappers = wrappers
            inp = ctx.input_bytes(data)

            if not data:
                return MAGIC + bytes([MAX_BITS])

            n_bits = INIT_BITS
            maxcode = _maxcode(n_bits)
            free_ent = FIRST_FREE

            ent = inp[0]
            for pos in range(1, len(data)):
                ctx.tick(4)
                c = inp[pos]
                fc = (ent << 8) | c
                hp = ((c << HSHIFT) ^ ent) % hsize

                found = False
                slot = ht_primary.get(hp, site=SITE_PRIMARY)
                if slot == fc:
                    found = True
                elif not (slot < 0):
                    disp = hsize - (value_of(hp) | 1)
                    probes = 0
                    while True:
                        ctx.tick(2)
                        hp = (hp + (hsize - disp)) % hsize
                        slot = ht_secondary.get(hp, site=SITE_SECONDARY)
                        probes += 1
                        if slot == fc:
                            found = True
                            break
                        if slot < 0:
                            break
                        if probes > hsize:
                            raise RuntimeError(
                                f"mitigated LZW hash table full "
                                f"({hsize} slots); raise hash_bits"
                            )

                if found:
                    ent = ct.get(hp, site=SITE_CODETAB)
                    continue

                out.write(ent, n_bits)
                if free_ent < MAX_MAX_CODE:
                    ct.set(hp, free_ent, site=SITE_CODETAB)
                    ht_primary.set(hp, fc, site=SITE_PRIMARY)
                    free_ent += 1
                    if free_ent > maxcode and n_bits < MAX_BITS:
                        n_bits += 1
                        maxcode = _maxcode(n_bits)
                ent = c

            out.write(ent, n_bits)

        return MAGIC + bytes([MAX_BITS]) + out.getvalue()

    kernel.run = run
    return kernel


def _bzip2_kernel(plan: MitigationPlan, registry: MitigationRegistry) -> MitigatedKernel:
    from repro.compression.bzip2 import bzip2_compress
    from repro.compression.bzip2.blocksort import (
        FTAB_LEN,
        FTAB_MISALIGN,
        SITE_BLOCK,
        SITE_FTAB,
        SITE_QUADRANT,
    )

    kernel = MitigatedKernel(
        target="bzip2", plan=plan, registry=registry, run=None
    )

    def mitigated_histogram(ctx, block, nblock, ftab=None, quadrant=None):
        if ftab is None:
            ftab = ctx.array(
                "ftab", FTAB_LEN, elem_size=4, misalign=FTAB_MISALIGN
            )
        if quadrant is None:
            quadrant = ctx.array("quadrant", max(nblock, 1), elem_size=2)
        ftab.fill(0)
        wrapped = registry.wrap(SITE_FTAB, ftab)
        if wrapped is not ftab:
            kernel.wrappers[SITE_FTAB] = wrapped

        j = block.get(0, site=SITE_BLOCK) << 8
        for i in range(nblock - 1, -1, -1):
            ctx.tick(3)
            quadrant.set(i, 0, site=SITE_QUADRANT)
            j = (j >> 8) | ((block.get(i, site=SITE_BLOCK) & 0xFF) << 8)
            wrapped.add(j, 1, site=SITE_FTAB)
        return ftab

    def run(data: bytes, ctx: ExecutionContext) -> bytes:
        kernel.wrappers = {}
        return bzip2_compress(
            data,
            ctx,
            block_size=len(data),
            histogram_fn=mitigated_histogram,
        )

    kernel.run = run
    return kernel


def build_kernel(
    target: str,
    plan: MitigationPlan,
    hash_bits: int = DEFAULT_HASH_BITS,
) -> MitigatedKernel:
    """Instantiate the patched kernel a plan calls for."""
    registry = MitigationRegistry.from_plan(plan)
    if target == "zlib":
        return _zlib_kernel(plan, registry)
    if target == "lzw":
        return _lzw_kernel(plan, registry, hash_bits=hash_bits)
    if target == "bzip2":
        return _bzip2_kernel(plan, registry)
    raise ValueError(
        f"no kernel factory for target {target!r}; "
        f"choose from {APPLY_TARGETS}"
    )
