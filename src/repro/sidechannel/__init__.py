"""Cache side-channel attack primitives.

* :mod:`repro.sidechannel.prime_probe` — Prime+Probe over (slice, set)
  locations, with the attacker's precomputed slice mapping
  (Section V-C1) and support for 1-way (CAT) or full-associativity
  priming.
* :mod:`repro.sidechannel.flush_reload` — Flush+Reload on shared lines
  (the fingerprinting attack's channel, Section VI).
* :mod:`repro.sidechannel.single_step` — the mprotect controlled-channel
  state machine of Fig. 5.
* :mod:`repro.sidechannel.frame_selection` — the paper's novel frame
  vetting/remapping technique (Section V-C2).
"""

from repro.sidechannel.prime_probe import AttackerMemory, PrimeProbe
from repro.sidechannel.flush_reload import FlushReload
from repro.sidechannel.single_step import SingleStepper
from repro.sidechannel.frame_selection import FrameSelector
from repro.sidechannel.eviction_sets import EvictionSetBuilder, EvictionSetError

__all__ = [
    "AttackerMemory",
    "PrimeProbe",
    "FlushReload",
    "SingleStepper",
    "FrameSelector",
    "EvictionSetBuilder",
    "EvictionSetError",
]
