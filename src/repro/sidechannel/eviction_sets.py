"""Minimal eviction-set construction without knowing the slice hash.

The Section V attack sidesteps slice reverse engineering by precomputing
the mapping over the enclave's small physical range (Section V-C1).
This module provides the complementary, general technique the
side-channel literature uses when no such shortcut exists: group-testing
reduction of a large candidate pool to a minimal eviction set (the
O(n·w) algorithm of Vila, Köpf and Morales), driven purely by timing —
no knowledge of the slice function required.

It serves two roles here: a from-scratch implementation of the standard
building block the paper's related work relies on, and a cross-check of
the cache model (the sets it finds must agree with the model's true
(slice, set) mapping — see ``tests/test_eviction_sets.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.model import LINE_SIZE, Cache


class EvictionSetError(RuntimeError):
    """The candidate pool cannot evict the target (pool too small)."""


class EvictionSetBuilder:
    """Finds minimal eviction sets by timing alone.

    Args:
        cache: the shared cache (used only through ``access`` timing,
            as a real attacker would).
        pool_base: base of the attacker's own memory region.
        pool_lines: number of candidate lines available.
        cos: class of service for the attacker's accesses.
    """

    def __init__(
        self,
        cache: Cache,
        pool_base: int = 0x6_0000_0000,
        pool_lines: int = 1 << 17,
        cos: int = 0,
        threshold: Optional[float] = None,
    ) -> None:
        self.cache = cache
        self.pool_base = pool_base
        self.pool_lines = pool_lines
        self.cos = cos
        cfg = cache.config
        self.threshold = (
            threshold
            if threshold is not None
            else (cfg.hit_latency + cfg.miss_latency) / 2
        )
        self.tests_performed = 0

    # -- the timing oracle --------------------------------------------------
    def evicts(self, target: int, candidates: list[int]) -> bool:
        """Does accessing ``candidates`` evict ``target``?

        Prime the target, stream the candidates, re-time the target.
        """
        self.tests_performed += 1
        self.cache.access(target, cos=self.cos)
        self.cache.access_many(candidates, cos=self.cos)
        result = self.cache.access(target, cos=self.cos)
        return result.latency > self.threshold

    # -- candidate pool -----------------------------------------------------
    def _congruent_pool(self, target: int) -> list[int]:
        """Lines sharing the target's set-index bits (what an attacker
        can match from address bits alone; the slice remains unknown)."""
        set_stride = LINE_SIZE * self.cache.config.sets_per_slice
        offset = (target % set_stride) & ~(LINE_SIZE - 1)
        first = self.pool_base - (self.pool_base % set_stride) + offset
        if first < self.pool_base:
            first += set_stride
        limit = self.pool_base + self.pool_lines * LINE_SIZE
        return list(range(first, limit, set_stride))

    # -- group-testing reduction ----------------------------------------------
    def find(self, target: int) -> list[int]:
        """A minimal (``ways``-sized) eviction set for ``target``.

        Raises:
            EvictionSetError: the pool cannot evict the target at all.
        """
        ways = self.cache.config.ways
        candidates = self._congruent_pool(target)
        if not self.evicts(target, candidates):
            raise EvictionSetError(
                f"pool of {len(candidates)} congruent lines does not evict "
                f"0x{target:x}"
            )

        while len(candidates) > ways:
            # Strided partition: every group is non-empty for any
            # candidate count, so each accepted trial strictly shrinks
            # the set and the loop terminates.
            n_groups = min(ways + 1, len(candidates))
            for g in range(n_groups):
                trial = [
                    addr
                    for i, addr in enumerate(candidates)
                    if i % n_groups != g
                ]
                if self.evicts(target, trial):
                    candidates = trial
                    break
            else:
                # No group removable: with a deterministic cache this
                # means we are already minimal-ish; stop.
                break
        return candidates
