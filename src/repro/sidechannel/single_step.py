"""The mprotect single-stepping state machine of Fig. 5.

Each iteration of the histogram loop (Listing 3) touches exactly one of
three arrays per line — ``quadrant[i] = 0`` (write), ``block[i]``
(read), ``ftab[j]++`` (write) — so revoking one array's permission at a
time yields one fault per line: user-space single-stepping without timer
interrupts (contribution 4d).

The stepper exposes two callbacks to the attack:

* ``before_ftab_access(page_vaddr)`` — fired on the ftab write fault
  (entering S2->S3).  The masked fault address identifies the ftab
  *page* (Section V-B); this is where frame vetting and priming happen.
* ``probe_point()`` — fired at the next quadrant fault (S4->S0 of the
  following iteration), i.e. immediately after the ftab access landed:
  the Prime+Probe measurement point.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exec.arrays import TArray
from repro.memsys.paging import AddressSpace, PageFault, Permissions


class SingleStepper:
    """Drives the permissions of quadrant/block/ftab per Fig. 5."""

    def __init__(
        self,
        space: AddressSpace,
        quadrant: TArray,
        block: TArray,
        ftab: TArray,
        before_ftab_access: Optional[Callable[[int], None]] = None,
        probe_point: Optional[Callable[[], None]] = None,
    ) -> None:
        self.space = space
        self._ranges = {
            "quadrant": (quadrant.base, quadrant.length * quadrant.elem_size),
            "block": (block.base, block.length * block.elem_size),
            "ftab": (ftab.base, ftab.length * ftab.elem_size),
        }
        self.before_ftab_access = before_ftab_access
        self.probe_point = probe_point
        self.steps = 0
        self._armed = False

    def _array_of(self, page_vaddr: int) -> Optional[str]:
        for name, (base, size) in self._ranges.items():
            first = base & ~0xFFF
            last = (base + size - 1) & ~0xFFF
            if first <= page_vaddr <= last:
                return name
        return None

    def _protect(self, name: str, perms: Permissions) -> None:
        base, size = self._ranges[name]
        self.space.mprotect(base, size, perms)

    def arm(self) -> None:
        """Enter S0: only the quadrant write is disallowed."""
        self._protect("quadrant", Permissions.READ)
        self._protect("block", Permissions.RW)
        self._protect("ftab", Permissions.RW)
        self._armed = True

    def disarm(self) -> None:
        for name in self._ranges:
            self._protect(name, Permissions.RW)
        self._armed = False

    def handle_fault(self, fault: PageFault) -> None:
        """The attacker's SIGSEGV handler: advance the state machine."""
        name = self._array_of(fault.page_vaddr)
        if name == "quadrant":
            # S4 -> S0: the previous iteration's ftab access is done.
            if self.probe_point is not None:
                self.probe_point()
            self._protect("quadrant", Permissions.RW)
            self._protect("block", Permissions.NONE)
            self.steps += 1
        elif name == "block":
            # S1 -> S2: let the read through, trap the ftab write.
            self._protect("block", Permissions.RW)
            self._protect("ftab", Permissions.READ)
        elif name == "ftab":
            # S2 -> S3: the architectural leak of the accessed page.
            if self.before_ftab_access is not None:
                self.before_ftab_access(fault.page_vaddr)
            self._protect("ftab", Permissions.RW)
            self._protect("quadrant", Permissions.READ)
        else:
            raise RuntimeError(
                f"unexpected fault at 0x{fault.page_vaddr:x} while stepping"
            )
