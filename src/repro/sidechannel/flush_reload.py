"""Flush+Reload on shared cache lines (Section II-B / Section VI).

The attacker maps a shared library (here: knows the physical line
addresses of the monitored function entry points), flushes them with
``clflush``, waits, and reloads while timing: a fast reload means the
victim executed that code since the flush.
"""

from __future__ import annotations

from repro.cache.model import Cache


class FlushReload:
    """clflush + timed reload on shared lines."""

    def __init__(self, cache: Cache, threshold: float | None = None) -> None:
        self.cache = cache
        cfg = cache.config
        self.threshold = (
            threshold
            if threshold is not None
            else (cfg.hit_latency + cfg.miss_latency) / 2
        )

    def flush(self, paddr: int) -> None:
        self.cache.flush(paddr)

    def reload(self, paddr: int) -> bool:
        """True if the reload hit, i.e. the victim touched the line."""
        result = self.cache.access(paddr)
        return result.latency < self.threshold

    def sample(self, paddrs: list[int]) -> list[bool]:
        """One Flush+Reload round over several monitored lines: reload
        (measure), then flush again for the next round."""
        hits = []
        for paddr in paddrs:
            hits.append(self.reload(paddr))
            self.cache.flush(paddr)
        return hits
