"""The frame-selection technique of Section V-C2.

"The attacker repeats S2 until ... a frame in an idle cache set is
found, i.e. performing all the state transition logic while not
performing actual access to ftab.  If the attacker detects cache
activity on the monitored cache sets, the state transition caused this
activity ... Therefore, the attacker remaps the frame until they find
one that does not collide with noise from the system (or until a
timeout)" — after which any remaining noisy lines are logged and
"treat[ed] as false positives later on".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cache.model import LINE_SIZE, Cache
from repro.memsys.paging import PAGE_SIZE, AddressSpace
from repro.sidechannel.prime_probe import Location, PrimeProbe

LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE


@dataclass
class VettedPage:
    """Outcome of vetting one victim page."""

    page_vaddr: int
    frame: int
    locations: list[Location]  # per line offset within the page
    noisy: set[Location] = field(default_factory=set)  # known false positives
    remaps: int = 0


class FrameSelector:
    """Vets (and if needed remaps) the physical frames behind victim
    pages so the monitored cache sets are idle across state transitions.
    """

    def __init__(
        self,
        space: AddressSpace,
        cache: Cache,
        prime_probe: PrimeProbe,
        transition: Callable[[], None],
        max_remaps: int = 32,
        enabled: bool = True,
    ) -> None:
        self.space = space
        self.cache = cache
        self.pp = prime_probe
        self.transition = transition  # replays the cost of a fault delivery
        self.max_remaps = max_remaps
        self.enabled = enabled
        self._vetted: dict[int, VettedPage] = {}

    def page_locations(self, page_vaddr: int) -> list[Location]:
        """(slice, set) of each of the page's 64 lines, in offset order."""
        frame = self.space.frame_of(page_vaddr)
        base = frame * PAGE_SIZE
        return [
            self.cache.location(base + k * LINE_SIZE)
            for k in range(LINES_PER_PAGE)
        ]

    def vet(self, page_vaddr: int) -> VettedPage:
        """Ensure the page's monitored sets are quiet; remap if not.

        With the technique disabled, the current frame is accepted as-is
        and *no* noisy-line bookkeeping happens — the ablation baseline.
        """
        cached = self._vetted.get(page_vaddr)
        if cached is not None:
            return cached

        if not self.enabled:
            vetted = VettedPage(
                page_vaddr,
                self.space.frame_of(page_vaddr),
                self.page_locations(page_vaddr),
            )
            self._vetted[page_vaddr] = vetted
            return vetted

        remaps = 0
        noisy: set[Location] = set()
        while True:
            locations = self.page_locations(page_vaddr)
            # Dry run: prime, take the transition cost, probe.
            self.pp.prime(locations)
            self.transition()
            noisy = self.pp.probe(locations)
            if not noisy:
                break
            if remaps >= self.max_remaps or self.space.free_frames_left() == 0:
                # Timeout: accept the frame, remember the bad lines.
                break
            self.space.remap(page_vaddr)
            remaps += 1

        vetted = VettedPage(
            page_vaddr,
            self.space.frame_of(page_vaddr),
            self.page_locations(page_vaddr),
            noisy=noisy,
            remaps=remaps,
        )
        self._vetted[page_vaddr] = vetted
        return vetted
