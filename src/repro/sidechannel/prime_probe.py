"""Prime+Probe over a sliced, way-partitioned LLC.

The attacker owns a pool of physical memory and precomputes, for every
(slice, set) location, which of its own lines land there — the paper's
"we precompute the slicing function for these addresses instead of
reverse engineering the full function" (Section V-C1).  Priming then
fills the location with attacker lines; probing times them again and
reports locations where a line went missing.

With the CAT attack partition reduced to a single way, one line per
location suffices and the victim's fill *must* evict it — the property
that makes the channel near-deterministic.  Without CAT, ``ways`` lines
per location are primed and any unrelated fill shows up as a false
positive.
"""

from __future__ import annotations

from repro.cache.model import LINE_SIZE, Cache

Location = tuple[int, int]  # (slice, set)


class AttackerMemory:
    """The attacker's own lines, indexed by cache location."""

    def __init__(
        self,
        cache: Cache,
        base: int = 0x4_0000_0000,
        n_lines: int = 1 << 17,
    ) -> None:
        self._by_location: dict[Location, list[int]] = {}
        for k in range(n_lines):
            paddr = base + k * LINE_SIZE
            self._by_location.setdefault(cache.location(paddr), []).append(paddr)

    def lines_for(self, location: Location, count: int) -> list[int]:
        """``count`` attacker line addresses mapping to ``location``."""
        lines = self._by_location.get(location, [])
        if len(lines) < count:
            raise ValueError(
                f"attacker pool has only {len(lines)} lines for {location}"
            )
        return lines[:count]

    def coverage(self) -> int:
        return len(self._by_location)


class PrimeProbe:
    """The measurement loop of the Section V attack."""

    def __init__(
        self,
        cache: Cache,
        memory: AttackerMemory,
        cos: int = 0,
        ways: int = 1,
        threshold: float | None = None,
    ) -> None:
        self.cache = cache
        self.memory = memory
        self.cos = cos
        self.ways = ways
        cfg = cache.config
        self.threshold = (
            threshold
            if threshold is not None
            else (cfg.hit_latency + cfg.miss_latency) / 2
        )

    def prime(self, locations: list[Location]) -> None:
        """Fill each location's attack-partition ways with own lines."""
        for loc in locations:
            for paddr in self.memory.lines_for(loc, self.ways):
                self.cache.access(paddr, cos=self.cos)

    def probe(self, locations: list[Location]) -> set[Location]:
        """Re-time the primed lines; return locations showing a miss.

        A miss means *someone* filled the location since the prime —
        the victim's secret-dependent access, or noise.
        """
        active: set[Location] = set()
        for loc in locations:
            for paddr in self.memory.lines_for(loc, self.ways):
                result = self.cache.access(paddr, cos=self.cos)
                if result.latency > self.threshold:
                    active.add(loc)
        return active
