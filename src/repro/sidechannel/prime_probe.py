"""Prime+Probe over a sliced, way-partitioned LLC.

The attacker owns a pool of physical memory and precomputes, for every
(slice, set) location, which of its own lines land there — the paper's
"we precompute the slicing function for these addresses instead of
reverse engineering the full function" (Section V-C1).  Priming then
fills the location with attacker lines; probing times them again and
reports locations where a line went missing.

With the CAT attack partition reduced to a single way, one line per
location suffices and the victim's fill *must* evict it — the property
that makes the channel near-deterministic.  Without CAT, ``ways`` lines
per location are primed and any unrelated fill shows up as a false
positive.
"""

from __future__ import annotations

from repro.cache.model import LINE_SIZE, Cache

Location = tuple[int, int]  # (slice, set)


class AttackerMemory:
    """The attacker's own lines, indexed by cache location."""

    def __init__(
        self,
        cache: Cache,
        base: int = 0x4_0000_0000,
        n_lines: int = 1 << 17,
    ) -> None:
        self._by_location: dict[Location, list[int]] = {}
        by_location = self._by_location
        paddr = base
        for loc in cache.locations_for_range(base, n_lines):
            lines = by_location.get(loc)
            if lines is None:
                by_location[loc] = [paddr]
            else:
                lines.append(paddr)
            paddr += LINE_SIZE
        # lines_for is called once per location per prime AND per probe;
        # the (location, count) -> prefix answer never changes.
        self._prefix_cache: dict[tuple[Location, int], list[int]] = {}

    def lines_for(self, location: Location, count: int) -> list[int]:
        """``count`` attacker line addresses mapping to ``location``."""
        key = (location, count)
        cached = self._prefix_cache.get(key)
        if cached is not None:
            return cached
        lines = self._by_location.get(location, [])
        if len(lines) < count:
            raise ValueError(
                f"attacker pool has only {len(lines)} lines for {location}"
            )
        result = self._prefix_cache[key] = lines[:count]
        return result

    def coverage(self) -> int:
        return len(self._by_location)

    def locations_with(self, count: int) -> list[Location]:
        """Locations where the pool holds at least ``count`` lines, in
        pool order — the monitorable universe for ``ways=count``."""
        return [
            loc
            for loc, lines in self._by_location.items()
            if len(lines) >= count
        ]


class PrimeProbe:
    """The measurement loop of the Section V attack."""

    def __init__(
        self,
        cache: Cache,
        memory: AttackerMemory,
        cos: int = 0,
        ways: int = 1,
        threshold: float | None = None,
    ) -> None:
        self.cache = cache
        self.memory = memory
        self.cos = cos
        self.ways = ways
        cfg = cache.config
        self.threshold = (
            threshold
            if threshold is not None
            else (cfg.hit_latency + cfg.miss_latency) / 2
        )
        # The monitored location set is stable across many consecutive
        # sweeps, so the flattened (location, line) visit order is
        # cached per distinct set — as an address vector ready for the
        # batch cache API, plus the parallel location column.
        self._sweep_cache: dict[
            tuple[Location, ...], tuple["np.ndarray", list[Location]]
        ] = {}

    def _sweep_arrays(
        self, locations: list[Location]
    ) -> tuple["np.ndarray", list[Location]]:
        key = tuple(locations)
        cached = self._sweep_cache.get(key)
        if cached is None:
            import numpy as np

            lines_for = self.memory.lines_for
            ways = self.ways
            pairs = [
                (loc, paddr)
                for loc in locations
                for paddr in lines_for(loc, ways)
            ]
            addrs = np.array([p for _, p in pairs], dtype=np.int64)
            locs = [loc for loc, _ in pairs]
            cached = self._sweep_cache[key] = (addrs, locs)
        return cached

    def prime(self, locations: list[Location]) -> None:
        """Fill each location's attack-partition ways with own lines."""
        addrs, _ = self._sweep_arrays(locations)
        self.cache.access_many_silent(addrs, self.cos)

    def probe(self, locations: list[Location]) -> set[Location]:
        """Re-time the primed lines; return locations showing a miss.

        A miss means *someone* filled the location since the prime —
        the victim's secret-dependent access, or noise.
        """
        import numpy as np

        addrs, locs = self._sweep_arrays(locations)
        lats = self.cache.access_many_timed(addrs, self.cos)
        return {locs[i] for i in np.flatnonzero(lats > self.threshold)}
