"""Timer-interrupt stepping: the baseline the paper rejects.

"Previous methods rely on timer interrupts for [single-stepping], but we
found these interrupts to be unreliable.  Instead, we use a
controlled-channel attack" (Section V-A).  This module models the
rejected baseline so the claim can be measured: an APIC-timer-style
interrupt preempts the victim every ~``period`` memory accesses with
jitter, and the attacker primes/probes at interrupt granularity instead
of at exact instruction boundaries.

Consequences (visible in the ABL-STEP benchmark):

* a window may contain zero or several ``ftab`` accesses — observations
  get merged or lost;
* the attacker cannot tell *which* loop iteration an access belongs to,
  so per-iteration alignment of the recovery is approximate.
"""

from __future__ import annotations

import random
from typing import Callable, Optional


class TimerStepper:
    """Preempts the victim every ``period`` accesses (with jitter).

    Wire :meth:`on_victim_access` into the enclave's environment hook;
    ``on_interrupt`` fires at each (jittered) timer expiry, like the
    attacker's handler running on the interrupt.
    """

    def __init__(
        self,
        period: int,
        jitter: int,
        on_interrupt: Callable[[], None],
        seed: int = 0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if jitter >= period:
            raise ValueError("jitter must be smaller than the period")
        self.period = period
        self.jitter = jitter
        self.on_interrupt = on_interrupt
        self._rng = random.Random(seed)
        self._until_next = self._next_deadline()
        self.interrupts = 0

    def _next_deadline(self) -> int:
        return self.period + self._rng.randint(-self.jitter, self.jitter)

    def on_victim_access(self, paddr: int, kind: str) -> None:
        self._until_next -= 1
        if self._until_next <= 0:
            self.interrupts += 1
            self._until_next = self._next_deadline()
            self.on_interrupt()
