"""Plaintext recovery from the Ncompress ``htab[hp]`` trace (Section IV-C).

"The compression algorithm is designed to be reversible [so] knowledge of
all previous input bytes allows the attacker to compute all dictionary
entries in the same manner as the compressor does.  In particular, the
attacker can xor the variable ``ent`` they compute with the observed
value of ``hp`` to gain each input byte ``c``."

``htab`` is cache-line aligned and 8 bytes per entry, so one observation
reveals ``hp & ~7``; since ``c`` sits at ``hp`` bits 9-16, every byte
after the first recovers exactly.  The first byte only ever appears as
``ent`` in the first probe, whose low 3 bits are hidden — so the
attacker "can check all 2^3 = 8 possible triplets of bits", which is
what :func:`recover_lzw_input` does, replaying the compressor for each
candidate and discarding those whose predicted probe sequence stops
matching the observed lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.lzw import FIRST_FREE, HSHIFT, HSIZE, MAX_MAX_CODE


@dataclass
class _ReplayState:
    """The attacker's replica of the compressor's dictionary state."""

    htab: dict[int, int]
    codetab: dict[int, int]
    free_ent: int
    ent: int


def _replay_step(state: _ReplayState, c: int, observations: list[int],
                 pos: int, base: int) -> int | None:
    """Advance the replica by one input byte, consuming observations.

    Returns the new observation cursor, or None on inconsistency.
    """
    fc = (state.ent << 8) | c
    hp = (c << HSHIFT) ^ state.ent
    n_obs = len(observations)

    if pos >= n_obs or (base + hp * 8) >> 6 != observations[pos]:
        return None
    pos += 1
    slot = state.htab.get(hp, -1)
    found = slot == fc
    if not found and slot >= 0:
        # Odd-forced displacement, mirroring lzw_compress exactly.
        disp = HSIZE - (hp | 1)
        while True:
            hp = (hp + (HSIZE - disp)) % HSIZE
            if pos >= n_obs or (base + hp * 8) >> 6 != observations[pos]:
                return None
            pos += 1
            slot = state.htab.get(hp, -1)
            if slot == fc:
                found = True
                break
            if slot < 0:
                break

    if found:
        state.ent = state.codetab[hp]
    else:
        if state.free_ent < MAX_MAX_CODE:
            state.codetab[hp] = state.free_ent
            state.htab[hp] = fc
            state.free_ent += 1
        state.ent = c
    return pos


def recover_lzw_input(
    observations: list[int], htab_base: int, n: int
) -> list[bytes]:
    """Reconstruct the plaintext from the observed htab cache lines.

    Args:
        observations: cache lines of *all* htab probe reads (primary and
            secondary), in program order.
        htab_base: base address of htab (must be cache-line aligned, as
            in the implementation the paper studies).
        n: plaintext length in bytes.

    Returns:
        the list of feasible plaintexts (1-8 entries; the ambiguity is
        the first byte's low 3 bits).  Empty if the trace is
        inconsistent.
    """
    if htab_base % 64 != 0:
        raise ValueError("recovery assumes a cache-line-aligned htab")
    if hasattr(observations, "tolist"):
        observations = observations.tolist()
    if n == 0:
        return [b""]
    if not observations and n == 1:
        # A single-byte input performs no probe; nothing constrains it.
        return [bytes([b]) for b in range(256)]

    # First probe: hp0 = (c1 << 9) ^ ent0 with ent0 = byte0 < 256, so the
    # observation fixes byte0's bits 3-7 and c1 entirely.
    hp0_high = ((observations[0] << 6) - htab_base) >> 3
    byte0_high = hp0_high & 0xF8

    results: list[bytes] = []
    for low3 in range(8):
        byte0 = byte0_high | low3
        state = _ReplayState({}, {}, FIRST_FREE, byte0)
        recovered = [byte0]
        pos = 0
        ok = True
        for _ in range(1, n):
            if pos >= len(observations):
                ok = False
                break
            hp_high = ((observations[pos] << 6) - htab_base) >> 3
            c = ((hp_high ^ state.ent) >> HSHIFT) & 0xFF
            new_pos = _replay_step(state, c, observations, pos, htab_base)
            if new_pos is None:
                ok = False
                break
            recovered.append(c)
            pos = new_pos
        if ok and pos == len(observations):
            results.append(bytes(recovered))
    return results
