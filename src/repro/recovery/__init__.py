"""Input recovery from cache-line-granular access traces.

These are the attacker-side computations of Section IV: given the
sequence of cache lines a leakage gadget touched (addresses with the low
6 bits masked) and the array base addresses (known in the threat model of
Section IV-A), reconstruct the plaintext.

* :mod:`repro.recovery.zlib_recover` — 2 direct bits per byte (25 %), or
  the full input when the top 3 bits of every byte are known a priori
  (e.g. lowercase ASCII).
* :mod:`repro.recovery.lzw_recover` — full input by replaying the
  dictionary; 8 candidates for the first byte's low 3 bits.
* :mod:`repro.recovery.bzip2_recover` — full input from the ftab trace
  with off-by-one ambiguity resolution and the consecutive-iteration
  redundancy used as error correction (Section V-D).
* :mod:`repro.recovery.oracle_recover` — the one non-cache decoder:
  BREACH-style secret recovery from a scalar compression oracle
  (two-guess probes, divide-and-conquer, charset escalation).
"""

from repro.recovery.observe import observed_lines
from repro.recovery.zlib_recover import (
    recover_direct_bits,
    recover_known_high_bits,
)
from repro.recovery.lzw_recover import recover_lzw_input
from repro.recovery.bzip2_recover import RecoveredBlock, recover_bzip2_block
from repro.recovery.oracle_recover import (
    CONFIRM_THRESHOLD,
    DEFAULT_CHARSET_LADDER,
    ProbeOutcome,
    RecoveryResult,
    probe_pair,
    recover_next_char,
    recover_secret,
    score_candidates,
)

__all__ = [
    "observed_lines",
    "recover_direct_bits",
    "recover_known_high_bits",
    "recover_lzw_input",
    "recover_bzip2_block",
    "RecoveredBlock",
    "CONFIRM_THRESHOLD",
    "DEFAULT_CHARSET_LADDER",
    "ProbeOutcome",
    "RecoveryResult",
    "probe_pair",
    "recover_next_char",
    "recover_secret",
    "score_candidates",
]
