"""Extracting the attacker's view from a taint trace.

The cache channel shows *which cache line* the victim touched, never the
offset within it (Section IV-A): the attacker's observation of an access
to address ``a`` is ``a >> 6``.
"""

from __future__ import annotations

from typing import Optional

from repro.exec.context import TracingContext

CACHE_LINE = 64


def observed_lines(
    ctx: TracingContext, site: str, kind: Optional[str] = None
) -> list[int]:
    """Cache-line indices of all accesses at ``site``, in program order.

    This is the idealised (noise-free) channel used by the survey; the
    end-to-end SGX attack of Section V produces the same shape of data
    through the simulated Prime+Probe channel.
    """
    return [
        access.address >> 6
        for access in ctx.tainted_accesses()
        if access.site == site and (kind is None or access.kind == kind)
    ]
