"""Attacker-side computation for the compression-*ratio* oracle (BREACH).

The cache-channel decoders in this package read address traces; this one
reads nothing but a scalar per query — the compressed response size a
BREACH attacker gets from Content-Length.  The victim reflects the
attacker's query next to a secret of the form ``PREFIX + secret``; if
the query contains ``PREFIX + known + c`` and ``c`` is the secret's next
character, the LZ77 match against the secret extends by one byte and the
response shrinks by roughly one literal.

Everything here is a pure function of the supplied ``observe`` callable
(the sealed oracle) and the RNG, so the attack logic is testable without
a victim and replayable from recorded probe traces.

Two classic robustness tricks from the BREACH paper are load-bearing:

* **Two-guess probes** — every guess set is scored as the size
  difference between a *match* probe (candidates adjacent to the known
  prefix, so a correct one extends the match) and a *break* probe with
  the exact same byte multiset but a separator splicing each candidate
  away from the prefix.  Identical byte content means identical Huffman
  pressure; the delta isolates the one-byte match extension.
* **Divide and conquer** — each probe carries half the alive charset
  (every candidate gets its own per-entry separator so cross-entry
  matches are equal-length in both probes), halving the alive set per
  round: O(log \\|charset\\|) probes per character instead of O(\\|charset\\|).

Byte-granular sizes quantise away sub-byte deltas, so each probe is
repeated with random incompressible padding (shifting bit alignment and
Huffman tables) and the deltas averaged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.workloads.generators import TOKEN_CHARSETS

#: observe(query) -> observed response size (already mitigated/sealed).
ObserveFn = Callable[[bytes], float]

#: Charset escalation order: start cheap, extend on failed confirmation.
DEFAULT_CHARSET_LADDER = ("alnum_lower", "alnum", "token68")

#: Per-entry separators: bytes that occur in neither the victim payload
#: (ASCII-ish HTML) nor any candidate charset, so they can never extend
#: a match.  Distinct per entry within a probe, which keeps cross-entry
#: matches the same length in the match and break probes (no bias).
_SEPARATORS = bytes(range(0xC0, 0xF8))

#: Random padding alphabet, disjoint from separators and charsets.
_PAD_ALPHABET = bytes(range(0x80, 0xC0))

#: A two-guess delta this far below zero confirms a candidate.  For a
#: wrong guess the two probes encode the *same token multiset* and the
#: delta is structurally exactly 0; for the right guess the extension
#: saves the candidate's Huffman code length (4-9 bits), which crosses
#: the byte-rounding boundary on a phase-dependent fraction of random
#: paddings — so the repetition mean sits between -1 and a little below
#: 0, and the threshold is set well inside that gap.
CONFIRM_THRESHOLD = -0.25


@dataclass(frozen=True)
class ProbeOutcome:
    """One scored two-guess probe (pure-data mirror of the trace record)."""

    step: int        # which secret position was being attacked
    label: str       # "half:<chars>" or "confirm:<char>"
    probe_len: int   # bytes in one of the pair's probes
    delta: float     # mean(size(match) - size(break)) over repetitions
    queries: int     # cumulative observe() calls after this probe


@dataclass
class RecoveryResult:
    """What :func:`recover_secret` found and how hard it had to work."""

    recovered: bytes
    confirmed: int            # leading characters that passed confirmation
    requested: int            # characters the caller asked for
    queries: int
    probes: list[ProbeOutcome] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when every *requested* character was confirmed."""
        return self.requested > 0 and self.confirmed == self.requested


def probe_pair(
    prefix: bytes,
    known: bytes,
    chars: Sequence[int],
    pad: bytes = b"",
) -> tuple[bytes, bytes]:
    """Build the two-guess probe pair for a candidate set.

    Both probes contain, per candidate ``c``, the bytes of
    ``prefix + known + c + sep``; the match probe keeps ``c`` adjacent to
    the prefix, the break probe splices ``sep`` in between.  Same byte
    multiset, same cross-entry match lengths — only a correct candidate
    in the match probe compresses one byte further against the secret.
    """
    if len(chars) > len(_SEPARATORS):
        raise ValueError(
            f"candidate set of {len(chars)} exceeds the "
            f"{len(_SEPARATORS)} available separators"
        )
    match = bytearray()
    broken = bytearray()
    for i, c in enumerate(chars):
        sep = _SEPARATORS[i : i + 1]
        match += prefix + known + bytes([c]) + sep
        broken += prefix + known + sep + bytes([c])
    return bytes(match) + pad, bytes(broken) + pad


def _random_pad(rng: random.Random, min_len: int = 8, max_len: int = 24) -> bytes:
    """Per-repetition dither: incompressible random high bytes.

    Each pad byte contributes its own (dynamic-Huffman) code length, so
    a fresh pad re-rolls the token stream's bit phase — a sub-byte
    match-extension saving crosses the byte-rounding boundary on a
    fraction of repetitions instead of being absorbed by all of them.
    (A *run* of one byte would collapse to a single match token and not
    dither anything.)
    """
    return bytes(rng.choices(_PAD_ALPHABET, k=rng.randint(min_len, max_len)))


def score_candidates(
    observe: ObserveFn,
    prefix: bytes,
    known: bytes,
    chars: Sequence[int],
    rng: random.Random,
    reps: int = 3,
) -> tuple[float, int]:
    """Mean two-guess delta for a candidate set; negative means the
    secret's next character is (probably) in the set.

    Returns ``(mean_delta, n_queries)``.  Each repetition re-pads both
    probes with the same fresh random tail, so byte-quantised sub-byte
    deltas survive the averaging.
    """
    total = 0.0
    for _ in range(max(1, reps)):
        pad = _random_pad(rng)
        match, broken = probe_pair(prefix, known, chars, pad)
        total += observe(match) - observe(broken)
    return total / max(1, reps), 2 * max(1, reps)


def recover_next_char(
    observe: ObserveFn,
    prefix: bytes,
    known: bytes,
    charset: bytes,
    rng: random.Random,
    step: int = 0,
    reps: int = 2,
    on_probe: Optional[Callable[[ProbeOutcome], None]] = None,
    queries_so_far: int = 0,
    confirm_threshold: float = CONFIRM_THRESHOLD,
    max_rounds: int = 4,
    strategy: str = "dnc",
) -> tuple[Optional[int], int]:
    """Recover one character; returns ``(char | None, queries)``.

    ``strategy="dnc"`` halves the alive set on the more-negative
    two-guess delta until one candidate remains (O(log) probes, the size
    oracle's mode); ``strategy="scan"`` scores every candidate with its
    own singleton probe and takes the argmin (O(n) probes — what a
    timing attacker must do, because multi-candidate probes pick up
    match-search timing systematics that the multiset trick cannot
    cancel).  Either way the winner must pass a singleton confirmation;
    ``None`` means confirmation failed — the caller escalates the
    charset or declares the oracle dead (mitigated).

    Scoring is *adaptive*: because the per-repetition delta only crosses
    the byte boundary on a phase-dependent fraction of paddings, a split
    whose halves tie (both near 0 — no repetition crossed) re-draws
    fresh paddings for both halves, up to ``max_rounds`` rounds of
    ``reps`` each, before committing.  The same widening applies to the
    confirmation probe.  A mitigated oracle never stops tying, so the
    extra rounds are bounded and show up as the query-cost of failing.
    """
    if strategy not in ("dnc", "scan"):
        raise ValueError(f"unknown recovery strategy {strategy!r}")
    queries = 0
    tie_margin = abs(confirm_threshold)

    def _probe_once(chars: Sequence[int]) -> float:
        nonlocal queries
        pad = _random_pad(rng)
        match, broken = probe_pair(prefix, known, chars, pad)
        queries += 2
        return observe(match) - observe(broken)

    def _emit(chars: Sequence[int], label: str, deltas: list[float]) -> None:
        if on_probe is not None:
            probe_len = len(probe_pair(prefix, known, chars)[0])
            on_probe(
                ProbeOutcome(
                    step=step,
                    label=label,
                    probe_len=probe_len,
                    delta=sum(deltas) / len(deltas),
                    queries=queries_so_far + queries,
                )
            )

    alive = list(charset)
    if strategy == "scan":
        best_mean = float("inf")
        best_c = alive[0]
        for c in alive:
            deltas = [_probe_once([c]) for _ in range(reps)]
            mean = sum(deltas) / len(deltas)
            _emit([c], f"scan:{chr(c)}", deltas)
            if mean < best_mean:
                best_mean, best_c = mean, c
        alive = [best_c]
    while len(alive) > 1:
        half = len(alive) // 2
        lo, hi = alive[:half], alive[half:]
        d_lo = [_probe_once(lo) for _ in range(reps)]
        d_hi = [_probe_once(hi) for _ in range(reps)]
        rounds = 1
        while (
            rounds < max_rounds
            and abs(sum(d_lo) / len(d_lo) - sum(d_hi) / len(d_hi)) < tie_margin
        ):
            d_lo += [_probe_once(lo) for _ in range(reps)]
            d_hi += [_probe_once(hi) for _ in range(reps)]
            rounds += 1
        _emit(lo, f"half:{bytes(lo[:8]).decode('latin1')}", d_lo)
        _emit(hi, f"half:{bytes(hi[:8]).decode('latin1')}", d_hi)
        alive = lo if sum(d_lo) / len(d_lo) <= sum(d_hi) / len(d_hi) else hi

    candidate = alive[0]
    deltas = [_probe_once([candidate]) for _ in range(reps)]
    rounds = 1
    while rounds < 2 * max_rounds and sum(deltas) / len(deltas) > confirm_threshold:
        deltas += [_probe_once([candidate]) for _ in range(reps)]
        rounds += 1
    _emit([candidate], f"confirm:{chr(candidate)}", deltas)
    if sum(deltas) / len(deltas) <= confirm_threshold:
        return candidate, queries
    return None, queries


def recover_secret(
    observe: ObserveFn,
    prefix: bytes,
    length: int,
    charsets: Sequence[str] = DEFAULT_CHARSET_LADDER,
    reps: int = 2,
    seed: int = 0,
    max_queries: int = 50_000,
    on_probe: Optional[Callable[[ProbeOutcome], None]] = None,
    confirm_threshold: float = CONFIRM_THRESHOLD,
    strategy: str = "dnc",
) -> RecoveryResult:
    """Iteratively recover ``length`` secret characters through the oracle.

    Per position: divide-and-conquer on the first charset; on failed
    confirmation, escalate up the ``charsets`` ladder (re-running on the
    wider set); if every charset fails — the signature of a mitigated or
    dead oracle — recovery stops and the result reports how many leading
    characters were actually confirmed.

    ``confirm_threshold`` is in observation units: the default suits a
    size oracle (bytes); a timing attacker passes roughly minus half the
    per-byte transmit cost in ticks.
    """
    rng = random.Random(seed)
    known = bytearray()
    probes: list[ProbeOutcome] = []
    queries = 0
    confirmed = 0

    def _record(outcome: ProbeOutcome) -> None:
        probes.append(outcome)
        if on_probe is not None:
            on_probe(outcome)

    for step in range(length):
        found: Optional[int] = None
        for charset_name in charsets:
            charset = TOKEN_CHARSETS[charset_name]
            found, used = recover_next_char(
                observe,
                prefix,
                bytes(known),
                charset,
                rng,
                step=step,
                reps=reps,
                on_probe=_record,
                queries_so_far=queries,
                confirm_threshold=confirm_threshold,
                strategy=strategy,
            )
            queries += used
            if found is not None or queries >= max_queries:
                break
        if found is None:
            break
        known.append(found)
        confirmed += 1
        if queries >= max_queries:
            break

    return RecoveryResult(
        recovered=bytes(known),
        confirmed=confirmed,
        requested=length,
        queries=queries,
        probes=probes,
    )
