"""Plaintext recovery from the Zlib ``head[ins_h]`` trace (Section IV-B).

The observed value at position ``i`` is the cache line of
``head + 2 * ins_h_i`` where::

    ins_h_i = (w[i] << 10  ^  w[i+1] << 5  ^  w[i+2]) & 0x7fff

``head`` is cache-line aligned, so the attacker learns
``ins_h_i & ~0x1f`` — bits 5..14.  Within those:

* bits 8-9 come only from ``w[i+1]`` (its bits 3-4): two bits per byte
  leak unconditionally — "the attacker ... can recover 25 % of the
  input plaintext data";
* bits 5-7 mix ``w[i+1]`` bits 0-2 with ``w[i+2]`` bits 5-7, and bits
  10-14 mix ``w[i]`` bits 0-4 with ``w[i+1]`` bits 5-7 — so when the top
  3 bits of every byte are known a priori (lowercase ASCII: ``0b011``)
  the whole input unravels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

HASH_MASK = 0x7FFF
LINE_MASK_BITS = 5  # head is aligned; elem size 2 hides ins_h bits 0..4


def _ins_h_high(observed_line: int, head_base: int) -> int:
    """Recover ``ins_h & ~0x1f`` from one observed cache line."""
    if head_base % 64 != 0:
        raise ValueError("recovery assumes a cache-line-aligned head array")
    return ((observed_line << 6) - head_base) >> 1


def recover_direct_bits(
    observations: list[int], head_base: int, n: int
) -> list[tuple[int, int]]:
    """The unconditional 25 % recovery.

    Args:
        observations: cache line of the ``head`` access for positions
            ``0 .. n-3``, in order.
        head_base: base address of ``head`` (threat model: known).
        n: plaintext length.

    Returns:
        per-byte ``(known_mask, known_bits)``; for bytes ``1..n-2`` the
        mask is ``0b00011000`` (bits 3-4), elsewhere 0.
    """
    out: list[tuple[int, int]] = [(0, 0)] * n
    for i, line in enumerate(observations):
        h = _ins_h_high(line, head_base)
        bits_34 = (h >> 8) & 0b11  # ins_h bits 8-9 = w[i+1] bits 3-4
        out[i + 1] = (0b11000, bits_34 << 3)
    return out


def recover_known_high_bits(
    observations: list[int],
    head_base: int,
    n: int,
    high_bits: int = 0b011,
) -> list[Optional[int]]:
    """Full recovery when bits 5-7 of every byte are known a priori.

    Works backwards so ``w[i+2]``'s high bits (known) peel ``w[i+1]``'s
    low bits out of the xor, then ``w[i+1]`` (now complete) peels
    ``w[i]``'s low bits at the first position.

    Returns:
        the plaintext as a list of ints, ``None`` where a byte cannot be
        determined (the final byte's low 5 bits never reach visible
        address bits — the paper's "minor losses").
    """
    known = high_bits << 5
    out: list[Optional[int]] = [None] * n
    if n < 3 or len(observations) == 0:
        return out

    if isinstance(observations, np.ndarray):
        # Array fast path: the per-observation bit algebra is pure
        # elementwise integer math, so one vector expression recovers
        # every interior byte at once.
        if head_base % 64 != 0:
            raise ValueError("recovery assumes a cache-line-aligned head array")
        end = 1 + observations.shape[0]
        if end > n:
            raise IndexError("more observations than plaintext positions")
        h = ((observations.astype(np.int64) << 6) - head_base) >> 1
        b34 = (h >> 8) & 0b11
        b02 = ((h >> 5) ^ (known >> 5)) & 0b111
        out[1:end] = (known | (b34 << 3) | b02).tolist()
        h0 = int(h[0])
    else:
        for i, line in enumerate(observations):
            h = _ins_h_high(line, head_base)
            # w[i+1] bits 3-4 directly (ins_h bits 8-9):
            b34 = (h >> 8) & 0b11
            # w[i+1] bits 0-2 = h bits 5-7 xor w[i+2] bits 5-7 (known):
            b02 = ((h >> 5) ^ (known >> 5)) & 0b111
            out[i + 1] = known | (b34 << 3) | b02
        h0 = _ins_h_high(observations[0], head_base)

    # Byte 0: obs_0 bits 10-14 = w0 bits 0-4 xor (w1 bits 5-7 at 10-12).
    w1_high = (out[1] or known) >> 5
    low5 = ((h0 >> 10) ^ w1_high) & 0b11111
    out[0] = known | low5
    # Byte n-1: only its (assumed-known) high bits ever leak.
    return out


def accuracy(recovered: list[Optional[int]], truth: bytes) -> float:
    """Fraction of plaintext bytes recovered exactly."""
    if not truth:
        return 1.0
    good = sum(
        1 for got, want in zip(recovered, truth) if got is not None and got == want
    )
    return good / len(truth)
