"""Plaintext recovery from the Bzip2 ``ftab[j]++`` trace (Section IV-D).

At loop iteration ``i`` the victim touches ``ftab + 4*j`` with
``j = (block[i] << 8) | block[i+1 mod n]``.  One cache-line observation
confines ``4*j + (ftab % 64)`` to a 64-byte window, i.e. ``j`` to 16
consecutive values:

* ``block[i]`` (= ``j >> 8``) is determined up to the paper's off-by-one
  ambiguity (the window may straddle a multiple of 256 because ftab is
  *not* line-aligned);
* ``block[i+1]``'s top bits are confined too, which is the redundancy
  the attacker uses "as a form of error correction" (Section V-D): each
  byte is the high half of one observation and the low half of another,
  and constraint propagation between neighbours resolves the ambiguity.

The same decoder serves the noise-free survey (one line per iteration)
and the end-to-end SGX attack (a *set* of candidate lines per iteration,
possibly empty on missed probes or polluted by false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Optional, Sequence

Observation = Optional[Sequence[int]]  # candidate cache lines, or None


@dataclass
class RecoveredBlock:
    """Result of decoding one block's ftab trace."""

    candidates: list[set[int]]  # per byte position, surviving values
    values: list[int]  # point estimate (first candidate, or 0)

    def byte_accuracy(self, truth: bytes) -> float:
        if not truth:
            return 1.0
        good = sum(1 for v, t in zip(self.values, truth) if v == t)
        return good / len(truth)

    def bit_accuracy(self, truth: bytes) -> float:
        """Fraction of correct bits — the paper's Section V-E metric."""
        if not truth:
            return 1.0
        good = 0
        for v, t in zip(self.values, truth):
            good += 8 - bin(v ^ t).count("1")
        return good / (8 * len(truth))

    def ambiguous_positions(self) -> list[int]:
        return [i for i, c in enumerate(self.candidates) if len(c) != 1]


@lru_cache(maxsize=None)
def _pairs_for_line(line: int, ftab_base: int) -> frozenset[tuple[int, int]]:
    """All (hi, lo) byte pairs whose ftab access falls in ``line``.

    ``4j + base in [lo_addr, lo_addr+63]`` pins ``j`` to the closed
    interval ``[ceil((lo_addr-base)/4), floor((lo_addr+63-base)/4)]``
    (16 consecutive values, clamped to the valid 16-bit range).  Traces
    revisit the same few thousand lines constantly, so the result is
    memoised per ``(line, ftab_base)``.
    """
    lo_addr = line << 6
    j_lo = max(0, -(-(lo_addr - ftab_base) // 4))
    j_hi = min(0xFFFF, (lo_addr + 63 - ftab_base) // 4)
    return frozenset((j >> 8, j & 0xFF) for j in range(j_lo, j_hi + 1))


def recover_bzip2_block(
    observations: Sequence[Observation],
    ftab_base: int,
    n: int,
    max_rounds: int = 4,
) -> RecoveredBlock:
    """Decode the block from per-iteration cache-line observations.

    Args:
        observations: ``observations[i]`` is the candidate cache lines
            seen when the loop processed index ``i`` (the access for the
            pair ``block[i], block[i+1 mod n]``); ``None`` or empty means
            the probe for that iteration was lost.
        ftab_base: base address of ftab (known in the threat model).
        n: block length.
        max_rounds: constraint-propagation sweeps.

    Returns:
        a :class:`RecoveredBlock` with per-position candidate sets after
        propagation and a point estimate.
    """
    all_bytes = set(range(256))
    candidates: list[set[int]] = [set(all_bytes) for _ in range(n)]

    # Pair constraints: observation i links positions i and (i+1) % n.
    pair_sets: list[Optional[set[tuple[int, int]]]] = [None] * n
    for i in range(n):
        obs = observations[i] if i < len(observations) else None
        if not obs:
            continue
        pairs: set[tuple[int, int]] = set()
        for line in obs:
            pairs |= _pairs_for_line(line, ftab_base)
        if pairs:
            pair_sets[i] = pairs

    # Initial narrowing from each observation in isolation.
    for i, pairs in enumerate(pair_sets):
        if pairs is None:
            continue
        candidates[i] &= {hi for hi, _ in pairs}
        candidates[(i + 1) % n] &= {lo for _, lo in pairs}

    # Propagate joint pair constraints until fixpoint (error correction
    # via the consecutive-iteration redundancy).
    for _ in range(max_rounds):
        changed = False
        for i, pairs in enumerate(pair_sets):
            if pairs is None:
                continue
            nxt = (i + 1) % n
            ok_pairs = {
                (hi, lo)
                for hi, lo in pairs
                if hi in candidates[i] and lo in candidates[nxt]
            }
            if not ok_pairs:
                continue  # contradictory (noisy) observation: skip
            new_hi = {hi for hi, _ in ok_pairs}
            new_lo = {lo for _, lo in ok_pairs}
            if new_hi != candidates[i]:
                candidates[i] = new_hi
                changed = True
            if new_lo != candidates[nxt]:
                candidates[nxt] = new_lo
                changed = True
        if not changed:
            break

    values = [min(c) if c else 0 for c in candidates]
    return RecoveredBlock(candidates=candidates, values=values)


def observations_from_lines(lines: Iterable[int], n: int) -> list[Observation]:
    """Adapt a noise-free trace (loop order: i = n-1 .. 0) into the
    per-index observation layout ``recover_bzip2_block`` expects.

    Accepts the line stream as any iterable of ints, including the
    int64 arrays :func:`repro.traces.replay.replay_lines_array` emits.
    """
    if hasattr(lines, "tolist"):
        lines = lines.tolist()
    per_index: list[Observation] = [None] * n
    for step, line in enumerate(lines):
        i = n - 1 - step
        if 0 <= i < n:
            per_index[i] = [line]
    return per_index
