"""Paged virtual memory with attacker-controllable permissions.

The substitution for a real OS + SGX page tables (DESIGN.md).  The
controlled-channel attack needs exactly three properties, all modelled
here: per-page permissions revocable by the attacker (``mprotect``),
faults that reveal the faulting *page* but not the offset (SGX masks the
low 12 address bits), and remappable virtual-to-physical frames (the
substrate of the frame-selection technique).
"""

from repro.memsys.paging import (
    PAGE_BITS,
    PAGE_SIZE,
    AddressSpace,
    PageFault,
    Permissions,
)

__all__ = [
    "AddressSpace",
    "PageFault",
    "Permissions",
    "PAGE_SIZE",
    "PAGE_BITS",
]
