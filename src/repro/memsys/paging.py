"""Page tables, permissions, faults and frame allocation."""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
OFFSET_MASK = PAGE_SIZE - 1


class Permissions(enum.Flag):
    """Per-page access permissions."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    RW = READ | WRITE


class PageFault(Exception):
    """Access violated page permissions (or hit an unmapped page).

    ``page_vaddr`` is the *masked* fault address: "even though SGX masks
    the page offset, the OS has architectural access to the address of
    [the] page that caused the page fault, albeit without the 12 lower
    address bits" (Section V-B).
    """

    def __init__(self, vaddr: int, kind: str) -> None:
        self.page_vaddr = vaddr & ~OFFSET_MASK
        self.kind = kind  # "read" | "write"
        super().__init__(f"{kind} fault at page 0x{self.page_vaddr:x}")


@dataclass
class _PageEntry:
    frame: int
    perms: Permissions


class AddressSpace:
    """One process's (enclave's) virtual address space.

    Frames are allocated from a finite pool (SGX's EPC is small — the
    paper's platform caps it at 128 MiB) in a shuffled order, so
    virtual-contiguity does not imply physical contiguity, exactly the
    property the slice precomputation and frame selection deal with.
    """

    def __init__(self, n_frames: int = 32768, seed: int = 99) -> None:
        self._pages: dict[int, _PageEntry] = {}
        rng = random.Random(seed)
        pool = list(range(n_frames))
        rng.shuffle(pool)
        # FIFO: a frame freed by remapping goes to the back of the queue,
        # so frame selection actually explores new frames instead of
        # ping-ponging between the same two.
        self._free_frames = deque(pool)
        self.fault_count = 0

    # -- mapping ---------------------------------------------------------
    def map_range(self, vaddr: int, size: int) -> None:
        """Map all pages covering ``[vaddr, vaddr+size)`` read-write."""
        first = vaddr >> PAGE_BITS
        last = (vaddr + max(size, 1) - 1) >> PAGE_BITS
        for vpn in range(first, last + 1):
            if vpn not in self._pages:
                self._pages[vpn] = _PageEntry(self._alloc_frame(), Permissions.RW)

    def _alloc_frame(self) -> int:
        if not self._free_frames:
            raise MemoryError("out of physical frames")
        return self._free_frames.popleft()

    def frame_of(self, vaddr: int) -> int:
        return self._entry(vaddr).frame

    def remap(self, vaddr: int, frame: int | None = None) -> int:
        """Move a page to a different physical frame (frame selection).

        Returns the new frame.  With ``frame=None`` the next free frame
        is used; the old frame returns to the pool.
        """
        entry = self._entry(vaddr)
        new_frame = frame if frame is not None else self._alloc_frame()
        self._free_frames.append(entry.frame)
        entry.frame = new_frame
        return new_frame

    def free_frames_left(self) -> int:
        return len(self._free_frames)

    # -- permissions -------------------------------------------------------
    def mprotect(self, vaddr: int, size: int, perms: Permissions) -> None:
        """Set permissions on all pages covering the range."""
        first = vaddr >> PAGE_BITS
        last = (vaddr + max(size, 1) - 1) >> PAGE_BITS
        for vpn in range(first, last + 1):
            entry = self._pages.get(vpn)
            if entry is None:
                raise ValueError(f"mprotect of unmapped page 0x{vpn << PAGE_BITS:x}")
            entry.perms = perms

    def _entry(self, vaddr: int) -> _PageEntry:
        entry = self._pages.get(vaddr >> PAGE_BITS)
        if entry is None:
            raise PageFault(vaddr, "unmapped")
        return entry

    # -- translation -------------------------------------------------------
    def translate(self, vaddr: int, kind: str) -> int:
        """Virtual -> physical, enforcing permissions.

        Raises:
            PageFault: permission missing; the exception carries only the
                masked page address, as SGX guarantees.
        """
        entry = self._entry(vaddr)
        need = Permissions.WRITE if kind in ("write", "update") else Permissions.READ
        if not entry.perms & need:
            self.fault_count += 1
            raise PageFault(vaddr, "write" if need is Permissions.WRITE else "read")
        return (entry.frame << PAGE_BITS) | (vaddr & OFFSET_MASK)

    def page_addresses(self, vaddr: int, size: int) -> list[int]:
        """Page-aligned virtual addresses covering a range."""
        first = vaddr >> PAGE_BITS
        last = (vaddr + max(size, 1) - 1) >> PAGE_BITS
        return [vpn << PAGE_BITS for vpn in range(first, last + 1)]
