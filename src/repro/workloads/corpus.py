"""A synthetic 21-file corpus standing in for Brotli's test files.

The Fig. 7 experiment only needs the corpus to span the regimes that
steer Bzip2's sorting control flow (DESIGN.md): tiny files and files
under one block (straight to fallbackSort — the confusable group the
paper calls out, e.g. the one-byte file ``x``), multi-block English-like
text (mainSort throughout), pathological repetition (mainSort abandons
to fallbackSort), binary/random data, and mixtures.  Names mirror the
Brotli corpus so the confusion matrix reads like the paper's.
"""

from __future__ import annotations

from repro.workloads.generators import dna_like, english_like, random_bytes


def brotli_like_corpus() -> dict[str, bytes]:
    """21 named test files, deterministic across runs."""
    quickfox = b"The quick brown fox jumps over the lazy dog"
    corpus: dict[str, bytes] = {
        # -- the tiny straight-to-fallbackSort group (the paper's
        #    hard-to-distinguish files, incl. the famous "x") --
        "x": b"x",
        "xyzzy": b"xyzzy",
        "10x10y": b"x" * 10 + b"y" * 10,
        "64x": b"x" * 64,
        "ukkonooa": b"ukko nooa ukko nooa kunnon mies " * 4,
        "quickfox": quickfox,
        "empty_ish": b"\n",
        # -- sub-block (< 10,000 byte) structured files: fallbackSort
        #    but with distinct durations --
        "asyoulik.txt": english_like(4000, seed=3),
        "alice29_excerpt.txt": english_like(8800, seed=4),
        "lcet10_excerpt.txt": english_like(6100, seed=5),
        "random_org_4k.bin": random_bytes(4096, seed=6),
        "monkey_dna": dna_like(7000, seed=7),
        # -- multi-block files: mainSort paths of varying length --
        "alice29.txt": english_like(24000, seed=8),
        "plrabn12.txt": english_like(31000, seed=9),
        "lcet10.txt": english_like(17500, seed=10),
        "random_org_10k.bin": random_bytes(10240, seed=11),
        "ecoli_dna": dna_like(22000, seed=12),
        # -- pathological repetition: mainSort abandons mid-way --
        "quickfox_repeated": quickfox * 500,  # ~22 KB of one sentence
        "compressed_repeated": b"abcabcabc" * 2500,
        "zeros": b"\x00" * 15000,
        "backward65536": bytes(range(256)) * 60,
    }
    if len(corpus) != 21:
        raise AssertionError(f"corpus must have 21 files, has {len(corpus)}")
    return corpus


def http_response_corpus(n: int = 6, seed: int = 0) -> dict[str, bytes]:
    """``n`` secret-bearing HTTP responses as a named corpus.

    Each member is one :class:`~repro.workloads.generators.
    HttpResponseGenerator` payload with its own token and session —
    the web-realistic workload class the :mod:`repro.oracle` BREACH
    scenario compresses, reusable by fingerprint/classifier pipelines.
    """
    from repro.workloads.generators import HttpResponseGenerator, token_secret

    corpus: dict[str, bytes] = {}
    for i in range(n):
        secret = token_secret(16, seed=seed + 31 * i)
        gen = HttpResponseGenerator(secret, seed=seed + 31 * i)
        corpus[f"response_{i:02d}.http"] = gen.response(b"q=example")
    return corpus
