"""Deterministic lorem-ipsum generation and the Fig. 8 file series.

"We create a series of 5 similar files of the same size, 20,000 bytes
each.  For generating these files, we use the Python utility lipsum to
output 5 random paragraphs ... we truncate each of them to the first 20
characters.  To generate the i-th file, where 1 <= i <= 5, we output a
random selection from [the] i first paragraphs."  File 1 is therefore a
single 20-character unit repeated — maximally repetitive — and each
later file mixes more distinct units, i.e. is *less* repetitive.
"""

from __future__ import annotations

import random

_LIPSUM_WORDS = (
    "lorem ipsum dolor sit amet consectetur adipiscing elit sed do "
    "eiusmod tempor incididunt ut labore et dolore magna aliqua enim "
    "ad minim veniam quis nostrud exercitation ullamco laboris nisi "
    "aliquip ex ea commodo consequat duis aute irure in reprehenderit "
    "voluptate velit esse cillum fugiat nulla pariatur excepteur sint "
    "occaecat cupidatat non proident sunt culpa qui officia deserunt "
    "mollit anim id est laborum"
).split()

FILE_SIZE = 20_000  # bytes, per the paper
UNIT_LENGTH = 20  # truncated paragraph length
N_FILES = 5


def lipsum_paragraph(rng: random.Random, n_words: int = 40) -> str:
    """One random lipsum paragraph ("similar to English text")."""
    words = [rng.choice(_LIPSUM_WORDS) for _ in range(n_words)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def repetitiveness_series(
    seed: int = 42,
    n_files: int = N_FILES,
    file_size: int = FILE_SIZE,
    unit_length: int = UNIT_LENGTH,
) -> list[bytes]:
    """The Fig. 8 inputs: ``n_files`` equal-size files where file *i*
    samples from the first *i* distinct 20-character units."""
    rng = random.Random(seed)
    units = [
        lipsum_paragraph(rng)[:unit_length].encode() for _ in range(n_files)
    ]
    files = []
    for i in range(1, n_files + 1):
        chunks = []
        size = 0
        while size < file_size:
            unit = units[rng.randrange(i)]
            chunks.append(unit)
            size += len(unit)
        files.append(b"".join(chunks)[:file_size])
    return files
