"""Low-level deterministic data generators."""

from __future__ import annotations

import random

_WORDS = (
    "the quick brown fox jumps over lazy dog while seven wizards "
    "quietly mix a potion of bright blue vexing liquid under warm "
    "evening light and small children watch from behind old wooden "
    "fences counting stars that drift across an autumn sky toward "
    "distant hills where rivers bend through quiet valleys carrying "
    "stories of travellers markets bridges lanterns and songs"
).split()


def random_bytes(n: int, seed: int = 0) -> bytes:
    """Uniform random bytes — the hardest data to leak (no redundancy,
    Section V-E)."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def lowercase_ascii(n: int, seed: int = 0) -> bytes:
    """Uniform lowercase letters: the Zlib survey's known-high-bits
    plaintext class (every byte in 0x61-0x7a)."""
    rng = random.Random(seed)
    return bytes(rng.randrange(0x61, 0x7B) for _ in range(n))


def english_like(n: int, seed: int = 0, words: tuple[str, ...] | None = None) -> bytes:
    """Word-salad English-like text: realistic entropy and match
    structure for the compressors."""
    rng = random.Random(seed)
    pool = list(words or _WORDS)
    out = []
    length = 0
    while length < n:
        word = rng.choice(pool)
        out.append(word)
        length += len(word) + 1
    # The loop counts word+space, join emits count-1 spaces: pad one
    # trailing space so the slice always reaches exactly n bytes.
    return (" ".join(out) + " ").encode()[:n]


def dna_like(n: int, seed: int = 0) -> bytes:
    """Four-letter alphabet (E.coli-style corpus member)."""
    rng = random.Random(seed)
    return bytes(rng.choice(b"acgt") for _ in range(n))


# -- secret-bearing HTTP responses (the BREACH victim payload) ---------

# Character classes CSRF/session tokens are commonly drawn from.  The
# oracle attacks start from ``alnum_lower`` and extend to ``alnum`` /
# ``token68`` when a position fails to confirm (charset extension).
TOKEN_CHARSETS: dict[str, bytes] = {
    "hex": b"0123456789abcdef",
    "alnum_lower": b"abcdefghijklmnopqrstuvwxyz0123456789",
    "alnum": (
        b"abcdefghijklmnopqrstuvwxyz"
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    ),
    "token68": (
        b"abcdefghijklmnopqrstuvwxyz"
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._~+/"
    ),
}


def token_secret(n: int, seed: int = 0, charset: str = "alnum_lower") -> bytes:
    """A CSRF/session-token-style secret of ``n`` chars from a named
    :data:`TOKEN_CHARSETS` class."""
    rng = random.Random(seed)
    alphabet = TOKEN_CHARSETS[charset]
    return bytes(rng.choice(alphabet) for _ in range(n))


class HttpResponseGenerator:
    """Secret-bearing HTTP response: headers + CSRF token + reflection.

    The BREACH precondition in one payload (SNIPPETS.md snippet 1): a
    fixed secret (the ``csrf`` form token) interleaved with
    attacker-controlled input (the reflected query parameter) in the
    same compression context.  The token sits *before* the reflection,
    so its byte span is independent of the attacker input — which is
    what lets the Debreach-style mitigation guard it — and the
    reflection sits close enough that every guess lands inside the
    LZ77 window.

    Deterministic: the same ``(secret, seed)`` always produces the same
    response for the same query, so the size/timing oracles built on
    top are pure functions of ``(secret, input, seed)``.
    """

    #: The known plaintext immediately preceding the secret — the
    #: attack's guess prefix (BREACH needs >= MIN_MATCH-1 known bytes).
    SECRET_PREFIX = b'name="csrf" value="'

    def __init__(self, secret: bytes, seed: int = 0, filler_bytes: int = 160):
        if not secret:
            raise ValueError("HttpResponseGenerator needs a non-empty secret")
        self.secret = bytes(secret)
        self.seed = seed
        session = token_secret(24, seed=seed ^ 0x5E55, charset="hex")
        self._head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/html; charset=utf-8\r\n"
            b"Cache-Control: no-store\r\n"
            b"Set-Cookie: session=" + session + b"; HttpOnly\r\n"
            b"\r\n"
            b"<html><body>\n"
            b'<form method="POST" action="/transfer">\n'
            b'<input type="hidden" ' + self.SECRET_PREFIX
        )
        self._tail = (
            b'">\n</form>\n<p>Results for: '
        )
        self._foot = (
            b"</p>\n<div>"
            + english_like(filler_bytes, seed=seed ^ 0xF111)
            + b"</div>\n</body></html>\n"
        )

    def response(self, query: bytes = b"") -> bytes:
        """The full response with ``query`` reflected into the body."""
        return self._head + self.secret + self._tail + bytes(query) + self._foot

    def secret_span(self, query: bytes = b"") -> tuple[int, int]:
        """``(start, end)`` byte span of the secret in :meth:`response`
        — constant in ``query`` because the token precedes the
        reflection (the span Debreach guards)."""
        del query
        start = len(self._head)
        return start, start + len(self.secret)
