"""Low-level deterministic data generators."""

from __future__ import annotations

import random

_WORDS = (
    "the quick brown fox jumps over lazy dog while seven wizards "
    "quietly mix a potion of bright blue vexing liquid under warm "
    "evening light and small children watch from behind old wooden "
    "fences counting stars that drift across an autumn sky toward "
    "distant hills where rivers bend through quiet valleys carrying "
    "stories of travellers markets bridges lanterns and songs"
).split()


def random_bytes(n: int, seed: int = 0) -> bytes:
    """Uniform random bytes — the hardest data to leak (no redundancy,
    Section V-E)."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def lowercase_ascii(n: int, seed: int = 0) -> bytes:
    """Uniform lowercase letters: the Zlib survey's known-high-bits
    plaintext class (every byte in 0x61-0x7a)."""
    rng = random.Random(seed)
    return bytes(rng.randrange(0x61, 0x7B) for _ in range(n))


def english_like(n: int, seed: int = 0, words: tuple[str, ...] | None = None) -> bytes:
    """Word-salad English-like text: realistic entropy and match
    structure for the compressors."""
    rng = random.Random(seed)
    pool = list(words or _WORDS)
    out = []
    length = 0
    while length < n:
        word = rng.choice(pool)
        out.append(word)
        length += len(word) + 1
    # The loop counts word+space, join emits count-1 spaces: pad one
    # trailing space so the slice always reaches exactly n bytes.
    return (" ".join(out) + " ").encode()[:n]


def dna_like(n: int, seed: int = 0) -> bytes:
    """Four-letter alphabet (E.coli-style corpus member)."""
    rng = random.Random(seed)
    return bytes(rng.choice(b"acgt") for _ in range(n))
