"""Workload generators: the inputs the paper's experiments run on.

The paper uses Brotli's 21-file test corpus (Fig. 7) and 5 lipsum-based
files of graded repetitiveness (Fig. 8); neither ships here, so
:mod:`repro.workloads.corpus` synthesises a 21-file corpus spanning the
same regimes (tiny files, English-like text, DNA-like data, random
binary, pathological repetition) and :mod:`repro.workloads.lipsum`
implements the deterministic lipsum generator and the Fig. 8 series.
"""

from repro.workloads.lipsum import lipsum_paragraph, repetitiveness_series
from repro.workloads.corpus import brotli_like_corpus
from repro.workloads.generators import (
    english_like,
    lowercase_ascii,
    random_bytes,
)

__all__ = [
    "lipsum_paragraph",
    "repetitiveness_series",
    "brotli_like_corpus",
    "english_like",
    "lowercase_ascii",
    "random_bytes",
]
