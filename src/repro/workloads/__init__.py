"""Workload generators: the inputs the paper's experiments run on.

The paper uses Brotli's 21-file test corpus (Fig. 7) and 5 lipsum-based
files of graded repetitiveness (Fig. 8); neither ships here, so
:mod:`repro.workloads.corpus` synthesises a 21-file corpus spanning the
same regimes (tiny files, English-like text, DNA-like data, random
binary, pathological repetition) and :mod:`repro.workloads.lipsum`
implements the deterministic lipsum generator and the Fig. 8 series.
:class:`~repro.workloads.generators.HttpResponseGenerator` produces the
secret-bearing HTTP responses the :mod:`repro.oracle` BREACH scenario
compresses (and that fingerprint/corpus code reuses as a web-realistic
payload class via :func:`~repro.workloads.corpus.http_response_corpus`).
"""

from repro.workloads.lipsum import lipsum_paragraph, repetitiveness_series
from repro.workloads.corpus import brotli_like_corpus, http_response_corpus
from repro.workloads.generators import (
    TOKEN_CHARSETS,
    HttpResponseGenerator,
    english_like,
    lowercase_ascii,
    random_bytes,
    token_secret,
)

__all__ = [
    "TOKEN_CHARSETS",
    "HttpResponseGenerator",
    "lipsum_paragraph",
    "repetitiveness_series",
    "brotli_like_corpus",
    "http_response_corpus",
    "english_like",
    "lowercase_ascii",
    "random_bytes",
    "token_secret",
]
